package cachestore

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"nanoxbar/internal/core"
	"nanoxbar/internal/truthtab"
)

// synthAll synthesizes f on every technology and returns the entries a
// cache holding them would snapshot.
func synthAll(t *testing.T, f truthtab.TT) []Entry {
	t.Helper()
	opts := core.DefaultOptions()
	var entries []Entry
	for _, tech := range []core.Technology{core.Diode, core.FET, core.FourTerminal} {
		im, err := core.Synthesize(f, tech, opts)
		if err != nil {
			t.Fatalf("synthesize %v: %v", tech, err)
		}
		entries = append(entries, Entry{Key: core.CacheKey(f, tech, opts), Imp: im})
	}
	return entries
}

func TestRoundTripAllTechnologies(t *testing.T) {
	f, err := truthtab.Parse("3:0x96") // 3-input XOR
	if err != nil {
		t.Fatal(err)
	}
	entries := synthAll(t, f)

	var buf bytes.Buffer
	if err := Write(&buf, core.Fingerprint(), entries); err != nil {
		t.Fatalf("write: %v", err)
	}
	fp, got, err := Read(bytes.NewReader(buf.Bytes()), core.Fingerprint())
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if fp != core.Fingerprint() {
		t.Fatalf("fingerprint %q, want %q", fp, core.Fingerprint())
	}
	if len(got) != len(entries) {
		t.Fatalf("read %d entries, want %d", len(got), len(entries))
	}
	for i, e := range got {
		want := entries[i]
		if e.Key != want.Key {
			t.Fatalf("entry %d key %q, want %q", i, e.Key, want.Key)
		}
		im := e.Imp
		if im.Tech != want.Imp.Tech || im.Rows != want.Imp.Rows || im.Cols != want.Imp.Cols || im.Method != want.Imp.Method {
			t.Fatalf("entry %d mismatch: got %v %dx%d %q, want %v %dx%d %q",
				i, im.Tech, im.Rows, im.Cols, im.Method,
				want.Imp.Tech, want.Imp.Rows, want.Imp.Cols, want.Imp.Method)
		}
		// The decisive check: the rebuilt array still computes f.
		if !im.Verify(f) {
			t.Fatalf("entry %d (%v): decoded implementation does not compute f", i, im.Tech)
		}
		// And it maps like the original (ToApp exercises the rebuilt
		// arrays for every technology).
		a, b := im.ToApp(), want.Imp.ToApp()
		if a.R != b.R || a.C != b.C {
			t.Fatalf("entry %d: rebuilt app %dx%d, want %dx%d", i, a.R, a.C, b.R, b.C)
		}
	}
}

func TestFingerprintMismatchRejected(t *testing.T) {
	f, _ := truthtab.Parse("2:0x6")
	entries := synthAll(t, f)
	var buf bytes.Buffer
	if err := Write(&buf, "some-other-synthesizer/99", entries); err != nil {
		t.Fatal(err)
	}
	_, _, err := Read(bytes.NewReader(buf.Bytes()), core.Fingerprint())
	if !errors.Is(err, ErrFingerprintMismatch) {
		t.Fatalf("err = %v, want ErrFingerprintMismatch", err)
	}
	// Without an expectation the snapshot reads fine — the caller opted
	// out of the check.
	if _, _, err := Read(bytes.NewReader(buf.Bytes()), ""); err != nil {
		t.Fatalf("fingerprint-agnostic read: %v", err)
	}
}

func TestBadMagicAndVersionRejected(t *testing.T) {
	write := func(h header) []byte {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if err := json.NewEncoder(zw).Encode(h); err != nil {
			t.Fatal(err)
		}
		zw.Close()
		return buf.Bytes()
	}
	if _, _, err := Read(bytes.NewReader(write(header{Magic: "nope", Version: Version})), ""); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: err = %v", err)
	}
	if _, _, err := Read(bytes.NewReader(write(header{Magic: Magic, Version: Version + 1})), ""); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version: err = %v", err)
	}
	if _, _, err := Read(bytes.NewReader([]byte("not gzip at all")), ""); err == nil || !strings.Contains(err.Error(), "gzip") {
		t.Fatalf("not gzip: err = %v", err)
	}
	// Corrupt entry counts must error, not drive allocation (a negative
	// or huge count previously panicked in make).
	if _, _, err := Read(bytes.NewReader(write(header{Magic: Magic, Version: Version, Entries: -1})), ""); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("negative entries: err = %v", err)
	}
	if _, _, err := Read(bytes.NewReader(write(header{Magic: Magic, Version: Version, Entries: 1 << 40})), ""); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("huge entry count: err = %v", err)
	}
}

func TestTruncatedSnapshotRejected(t *testing.T) {
	f, _ := truthtab.Parse("3:0x96")
	entries := synthAll(t, f)
	var buf bytes.Buffer
	// Header promises more entries than the stream carries.
	zw := gzip.NewWriter(&buf)
	enc := json.NewEncoder(zw)
	if err := enc.Encode(header{Magic: Magic, Version: Version, Fingerprint: "fp", Entries: len(entries) + 1}); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		wi, err := encodeImp(e.Imp)
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(wireEntry{Key: e.Key, Imp: wi}); err != nil {
			t.Fatal(err)
		}
	}
	zw.Close()
	if _, _, err := Read(bytes.NewReader(buf.Bytes()), ""); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated: err = %v", err)
	}
}

func TestCorruptEntriesRejected(t *testing.T) {
	cases := []struct {
		name string
		imp  wireImp
		want string
	}{
		{"unknown tech", wireImp{Tech: "quantum"}, "technology"},
		{"4t without lattice", wireImp{Tech: "lattice", Rows: 2, Cols: 2}, "without lattice"},
		{"shape mismatch", wireImp{Tech: "lattice", Lattice: &wireLattice{R: 2, C: 2, Sites: make([]wireSite, 3)}}, "sites"},
		{"bad site kind", wireImp{Tech: "lattice", Lattice: &wireLattice{R: 1, C: 1, Sites: []wireSite{{Kind: 9}}}}, "site kind"},
		{"bad site var", wireImp{Tech: "lattice", Lattice: &wireLattice{R: 1, C: 1, Sites: []wireSite{{Kind: 2, Var: 77}}}}, "variable"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			zw := gzip.NewWriter(&buf)
			enc := json.NewEncoder(zw)
			if err := enc.Encode(header{Magic: Magic, Version: Version, Entries: 1}); err != nil {
				t.Fatal(err)
			}
			if err := enc.Encode(wireEntry{Key: "k", Imp: tc.imp}); err != nil {
				t.Fatal(err)
			}
			zw.Close()
			_, _, err := Read(bytes.NewReader(buf.Bytes()), "")
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestSaveLoadFile(t *testing.T) {
	f, _ := truthtab.Parse("3:0xe8") // maj3
	entries := synthAll(t, f)
	path := filepath.Join(t.TempDir(), "cache.snap")
	if err := Save(path, core.Fingerprint(), entries); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := Load(path, core.Fingerprint())
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(got) != len(entries) {
		t.Fatalf("loaded %d entries, want %d", len(got), len(entries))
	}
	for i, e := range got {
		if !e.Imp.Verify(f) {
			t.Fatalf("entry %d does not verify after file round trip", i)
		}
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.snap"), ""); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
}
