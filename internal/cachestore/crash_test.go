package cachestore

// Crash-during-save scenarios: a checkpoint interrupted at any byte
// must never poison a later cold start, and the atomic Save must not
// litter the snapshot directory with temp files — neither on its own
// failures nor after a predecessor died before its rename.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nanoxbar/internal/core"
	"nanoxbar/internal/truthtab"
)

// writeSnapshot saves entries for one function to dir/snap.bin and
// returns the path.
func writeSnapshot(t *testing.T, dir string) (string, []Entry) {
	t.Helper()
	f, err := truthtab.Parse("3:0x96")
	if err != nil {
		t.Fatal(err)
	}
	entries := synthAll(t, f)
	path := filepath.Join(dir, "snap.bin")
	if err := Save(path, core.Fingerprint(), entries); err != nil {
		t.Fatalf("save: %v", err)
	}
	return path, entries
}

// listDir returns the directory's entry names.
func listDir(t *testing.T, dir string) []string {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(des))
	for _, de := range des {
		names = append(names, de.Name())
	}
	return names
}

// TestByteTruncatedSnapshotColdStartsCleanly: cut the snapshot file at
// every sampled byte offset — the shape a crash leaves when the
// snapshot was being copied or the filesystem lost the tail — and
// verify Load fails with an error (no panic, no partial entries).
func TestByteTruncatedSnapshotColdStartsCleanly(t *testing.T) {
	dir := t.TempDir()
	path, _ := writeSnapshot(t, dir)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	step := len(blob) / 37
	if step < 1 {
		step = 1
	}
	cuts := []int{0, 1, len(blob) - 1}
	for c := step; c < len(blob); c += step {
		cuts = append(cuts, c)
	}
	cut := filepath.Join(dir, "cut.bin")
	for _, n := range cuts {
		if err := os.WriteFile(cut, blob[:n], 0o600); err != nil {
			t.Fatal(err)
		}
		entries, err := Load(cut, core.Fingerprint())
		if err == nil {
			t.Fatalf("cut at %d/%d bytes loaded without error", n, len(blob))
		}
		if len(entries) != 0 {
			t.Fatalf("cut at %d returned %d partial entries alongside %v", n, len(entries), err)
		}
	}
	// The untouched snapshot still loads: truncation detection is not
	// over-rejecting.
	if _, err := Load(path, core.Fingerprint()); err != nil {
		t.Fatalf("intact snapshot: %v", err)
	}
}

// TestFailedSaveKeepsOldSnapshotAndNoTemp: a Save that fails mid-write
// (here: a poisoned entry the encoder refuses) must leave the previous
// snapshot byte-identical and remove its temp file.
func TestFailedSaveKeepsOldSnapshotAndNoTemp(t *testing.T) {
	dir := t.TempDir()
	path, entries := writeSnapshot(t, dir)
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	bad := append([]Entry{{Key: "", Imp: entries[0].Imp}}, entries...)
	if err := Save(path, core.Fingerprint(), bad); err == nil {
		t.Fatal("save of a poisoned entry succeeded")
	}

	if names := listDir(t, dir); len(names) != 1 || names[0] != "snap.bin" {
		t.Fatalf("directory after failed save: %v, want [snap.bin]", names)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("failed save altered the existing snapshot")
	}
	if _, err := Load(path, core.Fingerprint()); err != nil {
		t.Fatalf("snapshot after failed save: %v", err)
	}
}

// TestSaveSweepsCrashLeftovers: temp files from a saver that died
// before its rename are removed by the next successful Save, and the
// new snapshot is complete.
func TestSaveSweepsCrashLeftovers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	// Two abandoned temps and a truncated snapshot — the disk state a
	// kill -9 mid-checkpoint leaves behind.
	for _, leftover := range []string{"snap.bin.tmp-111", "snap.bin.tmp-222"} {
		if err := os.WriteFile(filepath.Join(dir, leftover), []byte("partial"), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(path, []byte("\x1f\x8b-torn"), 0o600); err != nil {
		t.Fatal(err)
	}

	f, err := truthtab.Parse("3:0x96")
	if err != nil {
		t.Fatal(err)
	}
	entries := synthAll(t, f)
	if err := Save(path, core.Fingerprint(), entries); err != nil {
		t.Fatalf("save over crash debris: %v", err)
	}

	for _, name := range listDir(t, dir) {
		if strings.Contains(name, ".tmp-") {
			t.Fatalf("stale temp %q survived a successful save", name)
		}
	}
	got, err := Load(path, core.Fingerprint())
	if err != nil {
		t.Fatalf("load after save: %v", err)
	}
	if len(got) != len(entries) {
		t.Fatalf("loaded %d entries, want %d", len(got), len(entries))
	}
}
