// Package qm implements exact two-level (SOP) minimization with the
// Quine–McCluskey procedure: prime implicant generation followed by a
// branch-and-bound minimum covering step with essential-prime and
// dominance reductions.
//
// The minimizer is exact — it returns a cover with the minimum number of
// products, breaking ties by total literal count — and is therefore the
// reference used for the paper's array-size formulas (Fig. 3 and Fig. 5),
// which assume minimized SOPs. Cost grows exponentially with variable
// count; callers should bound n (see Options) and fall back to package
// isop beyond.
package qm

import (
	"fmt"
	"math/bits"
	"slices"
	"sort"

	"nanoxbar/internal/cube"
	"nanoxbar/internal/truthtab"
)

// Options bound the exact minimization effort.
type Options struct {
	MaxVars   int // reject functions with more variables (default 12)
	MaxPrimes int // abort if prime generation exceeds this (default 50000)
	// MaxCoverPrimes rejects covering problems with more primes than
	// this before the branch-and-bound starts: large prime sets are
	// where exact covering stops being tractable, and failing fast
	// keeps the heuristic fallback cheap (default 96).
	MaxCoverPrimes int
	// MaxCoverWork bounds the covering branch-and-bound effort in
	// abstract work units (each node costs ~active-primes²/64 units, so
	// the bound tracks wall time across instance sizes). Default 2e6.
	MaxCoverWork int
}

// DefaultOptions are safe interactive limits: beyond them callers fall
// back to the ISOP heuristic (see latsynth.Covers).
func DefaultOptions() Options {
	return Options{MaxVars: 12, MaxPrimes: 50000, MaxCoverPrimes: 96, MaxCoverWork: 2_000_000}
}

// implicant is a cube in (value, don't-care-mask) representation.
type implicant struct {
	val uint64 // variable values on cared positions
	dc  uint64 // positions not in the cube
}

func (im implicant) toCube(n int) cube.Cube {
	var c cube.Cube
	for v := 0; v < n; v++ {
		bit := uint64(1) << uint(v)
		if im.dc&bit != 0 {
			continue
		}
		if im.val&bit != 0 {
			c.Pos |= bit
		} else {
			c.Neg |= bit
		}
	}
	return c
}

// Primes returns all prime implicants of on ∪ dc (the don't-care set
// participates in prime formation but needs no covering).
func Primes(on, dc truthtab.TT, opts Options) ([]cube.Cube, error) {
	n := on.NumVars()
	if dc.NumVars() != n {
		return nil, fmt.Errorf("qm: on/dc variable mismatch")
	}
	if opts.MaxVars > 0 && n > opts.MaxVars {
		return nil, fmt.Errorf("qm: %d variables exceeds limit %d", n, opts.MaxVars)
	}
	care := on.Or(dc)
	if care.IsZero() {
		return nil, nil
	}
	if care.IsOne() {
		return []cube.Cube{cube.Universe}, nil
	}

	// The generation loop keeps the frontier in a slice sorted by
	// (dc mask, popcount, value): pairing partners then live in
	// adjacent popcount runs of the same dc run, and duplicates of the
	// next generation compact away after one sort — no per-generation
	// maps. The cur/next backing arrays and the combined flags are
	// swapped and reused across generations, so steady-state work
	// allocates only when a generation outgrows every previous one.
	cur := make([]implicant, 0, care.CountOnes())
	care.ForEachMinterm(func(a uint64) {
		cur = append(cur, implicant{val: a})
	})
	var (
		next     []implicant
		combined []bool
		primes   []cube.Cube
	)
	for len(cur) > 0 {
		if opts.MaxPrimes > 0 && len(cur) > opts.MaxPrimes {
			return nil, fmt.Errorf("qm: implicant frontier %d exceeds limit %d", len(cur), opts.MaxPrimes)
		}
		slices.SortFunc(cur, func(a, b implicant) int {
			if a.dc != b.dc {
				if a.dc < b.dc {
					return -1
				}
				return 1
			}
			if d := bits.OnesCount64(a.val) - bits.OnesCount64(b.val); d != 0 {
				return d
			}
			if a.val < b.val {
				return -1
			}
			if a.val > b.val {
				return 1
			}
			return 0
		})
		if cap(combined) < len(cur) {
			combined = make([]bool, len(cur))
		} else {
			combined = combined[:len(cur)]
			clear(combined)
		}
		next = next[:0]
		for gs := 0; gs < len(cur); {
			ge := gs
			for ge < len(cur) && cur[ge].dc == cur[gs].dc {
				ge++
			}
			// Pair each popcount run with the run one higher.
			for ls := gs; ls < ge; {
				pc := bits.OnesCount64(cur[ls].val)
				le := ls
				for le < ge && bits.OnesCount64(cur[le].val) == pc {
					le++
				}
				he := le
				for he < ge && bits.OnesCount64(cur[he].val) == pc+1 {
					he++
				}
				for i := ls; i < le; i++ {
					for j := le; j < he; j++ {
						diff := cur[i].val ^ cur[j].val
						if bits.OnesCount64(diff) != 1 {
							continue
						}
						combined[i], combined[j] = true, true
						next = append(next, implicant{val: cur[i].val &^ diff, dc: cur[i].dc | diff})
					}
				}
				ls = le
			}
			gs = ge
		}
		for i, im := range cur {
			if !combined[i] {
				primes = append(primes, im.toCube(n))
			}
		}
		// Dedup the next generation (one merged implicant arises once
		// per don't-care bit) by sort + compact.
		slices.SortFunc(next, func(a, b implicant) int {
			if a.dc != b.dc {
				if a.dc < b.dc {
					return -1
				}
				return 1
			}
			if a.val < b.val {
				return -1
			}
			if a.val > b.val {
				return 1
			}
			return 0
		})
		next = slices.Compact(next)
		cur, next = next, cur
	}
	// Deterministic order for reproducible covers.
	sort.Slice(primes, func(i, j int) bool {
		if primes[i].Pos != primes[j].Pos {
			return primes[i].Pos < primes[j].Pos
		}
		return primes[i].Neg < primes[j].Neg
	})
	return primes, nil
}

// Minimize returns a minimum SOP cover of the incompletely specified
// function (on, dc): the cover contains all of on, nothing outside
// on ∪ dc, uses the fewest possible products, and among those the fewest
// literals.
func Minimize(on, dc truthtab.TT, opts Options) (cube.Cover, error) {
	primes, err := Primes(on, dc, opts)
	if err != nil {
		return nil, err
	}
	if on.IsZero() {
		return cube.Cover{}, nil
	}
	if on.Or(dc).IsOne() {
		return cube.Cover{cube.Universe}, nil
	}
	if opts.MaxCoverPrimes > 0 && len(primes) > opts.MaxCoverPrimes {
		return nil, fmt.Errorf("qm: %d primes exceeds covering limit %d", len(primes), opts.MaxCoverPrimes)
	}
	ms := on.Minterms()
	sel, complete := solveCover(primes, ms, opts.MaxCoverWork)
	if !complete {
		return nil, fmt.Errorf("qm: covering search exceeded %d work units", opts.MaxCoverWork)
	}
	out := make(cube.Cover, 0, len(sel))
	for _, i := range sel {
		out = append(out, primes[i])
	}
	out.Sort()
	return out, nil
}

// MinimizeTT minimizes a completely specified function.
func MinimizeTT(f truthtab.TT, opts Options) (cube.Cover, error) {
	return Minimize(f, truthtab.Zero(f.NumVars()), opts)
}

// --- minimum covering ---

type coverState struct {
	primeCov [][]uint64 // per prime: bitset over minterm columns
	primeLit []int
	nCols    int
	bestSel  []int
	bestCost coverCost
	work     int // abstract work spent
	maxWork  int
}

type coverCost struct {
	cubes    int
	literals int
}

func (c coverCost) less(d coverCost) bool {
	if c.cubes != d.cubes {
		return c.cubes < d.cubes
	}
	return c.literals < d.literals
}

func bitsetWords(n int) int { return (n + 63) / 64 }

// solveCover picks a minimum subset of primes covering all minterm
// columns. Exact branch and bound over the cyclic core after essential
// and dominance reductions. The second result is false when the node
// budget was exhausted before the search completed (the best solution
// found so far may be suboptimal, so callers treat it as failure).
func solveCover(primes []cube.Cube, ms []uint64, maxWork int) ([]int, bool) {
	nCols := len(ms)
	if maxWork <= 0 {
		maxWork = 1 << 40
	}
	st := &coverState{nCols: nCols, bestCost: coverCost{cubes: 1 << 30}, maxWork: maxWork}
	st.primeCov = make([][]uint64, len(primes))
	st.primeLit = make([]int, len(primes))
	for i, p := range primes {
		w := make([]uint64, bitsetWords(nCols))
		for j, m := range ms {
			if p.Eval(m) {
				w[j>>6] |= 1 << uint(j&63)
			}
		}
		st.primeCov[i] = w
		st.primeLit[i] = p.NumLiterals()
	}
	remaining := make([]uint64, bitsetWords(nCols))
	for j := 0; j < nCols; j++ {
		remaining[j>>6] |= 1 << uint(j&63)
	}
	active := make([]bool, len(primes))
	for i := range active {
		active[i] = true
	}
	st.search(remaining, active, nil, coverCost{})
	sel := append([]int(nil), st.bestSel...)
	sort.Ints(sel)
	return sel, st.work < st.maxWork
}

func (st *coverState) search(remaining []uint64, active []bool, sel []int, cost coverCost) {
	nAct := 0
	for _, a := range active {
		if a {
			nAct++
		}
	}
	st.work += 1 + nAct*nAct/64
	if st.work >= st.maxWork {
		return
	}
	// Reduction loop: essentials and dominance to fixpoint.
	remaining = cloneBits(remaining)
	active = append([]bool(nil), active...)
	sel = append([]int(nil), sel...)
	for {
		if isEmpty(remaining) {
			if cost.less(st.bestCost) {
				st.bestCost = cost
				st.bestSel = append([]int(nil), sel...)
			}
			return
		}
		if !cost.less(st.bestCost) {
			return // bound
		}
		changed := false
		// Essential columns: covered by exactly one active prime.
		ess := -1
		for j := 0; j < st.nCols && ess < 0; j++ {
			if remaining[j>>6]>>uint(j&63)&1 == 0 {
				continue
			}
			cnt, last := 0, -1
			for i, a := range active {
				if a && st.primeCov[i][j>>6]>>uint(j&63)&1 == 1 {
					cnt++
					last = i
					if cnt > 1 {
						break
					}
				}
			}
			if cnt == 0 {
				return // uncoverable (cannot happen with all primes)
			}
			if cnt == 1 {
				ess = last
			}
		}
		if ess >= 0 {
			sel = append(sel, ess)
			cost.cubes++
			cost.literals += st.primeLit[ess]
			andNot(remaining, st.primeCov[ess])
			active[ess] = false
			changed = true
		}
		if !changed {
			// Row dominance: drop prime b if some prime a covers a
			// superset of b's remaining columns at no higher literal
			// cost.
			for b := range active {
				if !active[b] {
					continue
				}
				covB := andBits(st.primeCov[b], remaining)
				if isEmpty(covB) {
					active[b] = false
					changed = true
					continue
				}
				for a := range active {
					if a == b || !active[a] {
						continue
					}
					covA := andBits(st.primeCov[a], remaining)
					if !containsBits(covA, covB) || st.primeLit[a] > st.primeLit[b] {
						continue
					}
					// Equal coverage and cost: keep the lower index
					// only, so the pair does not eliminate itself.
					if containsBits(covB, covA) && st.primeLit[a] == st.primeLit[b] && a > b {
						continue
					}
					active[b] = false
					changed = true
					break
				}
			}
		}
		if !changed {
			break
		}
	}
	// Branch on the hardest column (fewest covering primes).
	bestJ, bestCnt := -1, 1<<30
	for j := 0; j < st.nCols; j++ {
		if remaining[j>>6]>>uint(j&63)&1 == 0 {
			continue
		}
		cnt := 0
		for i, a := range active {
			if a && st.primeCov[i][j>>6]>>uint(j&63)&1 == 1 {
				cnt++
			}
		}
		if cnt < bestCnt {
			bestCnt, bestJ = cnt, j
		}
	}
	if bestJ < 0 {
		return
	}
	for i, a := range active {
		if !a || st.primeCov[i][bestJ>>6]>>uint(bestJ&63)&1 == 0 {
			continue
		}
		rem2 := cloneBits(remaining)
		andNot(rem2, st.primeCov[i])
		act2 := append([]bool(nil), active...)
		act2[i] = false
		st.search(rem2, act2,
			append(append([]int(nil), sel...), i),
			coverCost{cost.cubes + 1, cost.literals + st.primeLit[i]})
	}
}

func cloneBits(w []uint64) []uint64 { return append([]uint64(nil), w...) }

func isEmpty(w []uint64) bool {
	for _, x := range w {
		if x != 0 {
			return false
		}
	}
	return true
}

func andNot(dst, src []uint64) {
	for i := range dst {
		dst[i] &^= src[i]
	}
}

func andBits(a, b []uint64) []uint64 {
	r := make([]uint64, len(a))
	for i := range a {
		r[i] = a[i] & b[i]
	}
	return r
}

// containsBits reports a ⊇ b.
func containsBits(a, b []uint64) bool {
	for i := range a {
		if b[i]&^a[i] != 0 {
			return false
		}
	}
	return true
}
