package qm

import (
	"math/rand"
	"testing"

	"nanoxbar/internal/truthtab"
)

func benchFunc(n int, seed int64) truthtab.TT {
	rng := rand.New(rand.NewSource(seed))
	f := truthtab.New(n)
	for a := uint64(0); a < f.Size(); a++ {
		if rng.Intn(2) == 1 {
			f.SetBit(a, true)
		}
	}
	return f
}

func BenchmarkPrimes6Var(b *testing.B) {
	f := benchFunc(6, 1)
	z := truthtab.Zero(6)
	for i := 0; i < b.N; i++ {
		if _, err := Primes(f, z, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinimize6Var(b *testing.B) {
	f := benchFunc(6, 2)
	for i := 0; i < b.N; i++ {
		if _, err := MinimizeTT(f, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinimizeMaj7(b *testing.B) {
	f := truthtab.FromFunc(7, func(a uint64) bool {
		c := 0
		for v := 0; v < 7; v++ {
			c += int(a >> uint(v) & 1)
		}
		return c >= 4
	})
	for i := 0; i < b.N; i++ {
		if _, err := MinimizeTT(f, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
