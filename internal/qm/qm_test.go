package qm

import (
	"math/rand"
	"testing"

	"nanoxbar/internal/cube"
	"nanoxbar/internal/isop"
	"nanoxbar/internal/truthtab"
)

var opts = DefaultOptions()

func minTT(t *testing.T, f truthtab.TT) cube.Cover {
	t.Helper()
	c, err := MinimizeTT(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func randTT(n int, rng *rand.Rand) truthtab.TT {
	f := truthtab.New(n)
	for a := uint64(0); a < f.Size(); a++ {
		if rng.Intn(2) == 1 {
			f.SetBit(a, true)
		}
	}
	return f
}

func TestConstants(t *testing.T) {
	if c := minTT(t, truthtab.Zero(3)); len(c) != 0 {
		t.Fatalf("min(0) = %v", c)
	}
	c := minTT(t, truthtab.One(3))
	if len(c) != 1 || !c[0].IsUniverse() {
		t.Fatalf("min(1) = %v", c)
	}
}

func TestPrimesKnown(t *testing.T) {
	// f = x1x2 + x1'x2' (XNOR): primes are exactly the two products.
	f := truthtab.FromMinterms(2, []uint64{0, 3})
	ps, err := Primes(f, truthtab.Zero(2), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("primes = %v", ps)
	}
	// maj3 has exactly 3 primes.
	maj := truthtab.FromFunc(3, func(a uint64) bool {
		return a&1+a>>1&1+a>>2&1 >= 2
	})
	ps, err = Primes(maj, truthtab.Zero(3), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 3 {
		t.Fatalf("maj3 primes = %v", ps)
	}
}

func TestPrimesAreActuallyPrime(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 60; i++ {
		n := 1 + rng.Intn(5)
		f := randTT(n, rng)
		ps, err := Primes(f, truthtab.Zero(n), opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range ps {
			if !cube.IsImplicant(p, f) {
				t.Fatalf("prime %v not implicant of %v", p, f)
			}
			// Dropping any literal must break implication.
			for _, l := range p.Literals() {
				q := p
				if l.Neg {
					q.Neg &^= 1 << uint(l.Var)
				} else {
					q.Pos &^= 1 << uint(l.Var)
				}
				if cube.IsImplicant(q, f) {
					t.Fatalf("cube %v of %v not prime (drop %v)", p, f, l)
				}
			}
		}
	}
}

func TestMinimizeEqualsFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 120; i++ {
		n := 1 + rng.Intn(6)
		f := randTT(n, rng)
		c := minTT(t, f)
		if !cube.IsCoverOf(c, f) {
			t.Fatalf("minimized cover != f: f=%v c=%v", f, c)
		}
	}
}

// bruteMinProducts finds the true minimum product count by enumerating
// prime subsets (tiny n only).
func bruteMinProducts(t *testing.T, f truthtab.TT) int {
	t.Helper()
	ps, err := Primes(f, truthtab.Zero(f.NumVars()), opts)
	if err != nil {
		t.Fatal(err)
	}
	if f.IsZero() {
		return 0
	}
	n := f.NumVars()
	for k := 1; k <= len(ps); k++ {
		idx := make([]int, k)
		var rec func(pos, start int) bool
		rec = func(pos, start int) bool {
			if pos == k {
				var cv cube.Cover
				for _, i := range idx {
					cv = append(cv, ps[i])
				}
				return cv.ToTT(n).Equal(f)
			}
			for i := start; i < len(ps); i++ {
				idx[pos] = i
				if rec(pos+1, i+1) {
					return true
				}
			}
			return false
		}
		if rec(0, 0) {
			return k
		}
	}
	t.Fatal("no cover found from primes")
	return -1
}

func TestMinimality(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		n := 2 + rng.Intn(3) // n in 2..4 keeps brute force cheap
		f := randTT(n, rng)
		c := minTT(t, f)
		want := bruteMinProducts(t, f)
		if len(c) != want {
			t.Fatalf("n=%d f=%v: got %d products, optimum %d (cover %v)", n, f, len(c), want, c)
		}
	}
}

func TestMinimalityVsISOP(t *testing.T) {
	// Exact result never uses more products than the ISOP heuristic.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 60; i++ {
		n := 2 + rng.Intn(5)
		f := randTT(n, rng)
		exact := minTT(t, f)
		heur := isop.OfTT(f)
		if len(exact) > len(heur) {
			t.Fatalf("exact %d > isop %d for %v", len(exact), len(heur), f)
		}
	}
}

func TestDontCares(t *testing.T) {
	// on = x1x2, dc = x1x2' → minimum is the single literal x1.
	on := truthtab.Var(2, 0).And(truthtab.Var(2, 1))
	dc := truthtab.Var(2, 0).And(truthtab.Var(2, 1).Not())
	c, err := Minimize(on, dc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 1 || c[0].String() != "x1" {
		t.Fatalf("cover = %v", c)
	}
	g := c.ToTT(2)
	if !on.Implies(g) || !g.Implies(on.Or(dc)) {
		t.Fatal("don't-care interval violated")
	}
}

func TestDontCareInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 80; i++ {
		n := 1 + rng.Intn(5)
		a, b := randTT(n, rng), randTT(n, rng)
		on := a.AndNot(b)
		dc := a.And(b)
		c, err := Minimize(on, dc, opts)
		if err != nil {
			t.Fatal(err)
		}
		g := c.ToTT(n)
		if !on.Implies(g) || !g.Implies(on.Or(dc)) {
			t.Fatalf("interval violated: on=%v dc=%v g=%v", on, dc, g)
		}
	}
}

func TestPaperExampleMinimization(t *testing.T) {
	// The DATE'17 running example f = x1x2 + x1'x2' must minimize to
	// exactly 2 products with 4 literals, and its dual to 2 products.
	f := truthtab.FromMinterms(2, []uint64{0, 3})
	c := minTT(t, f)
	if len(c) != 2 || c.TotalLiterals() != 4 {
		t.Fatalf("f cover = %v", c)
	}
	cd := minTT(t, f.Dual())
	if len(cd) != 2 {
		t.Fatalf("fD cover = %v", cd)
	}
}

func TestFig4FunctionMinimization(t *testing.T) {
	// Fig. 4 function: all 4 products are essential primes.
	cv, _, err := cube.ParseSOP("x1x2x3 + x1x2x5x6 + x2x3x4x5 + x4x5x6")
	if err != nil {
		t.Fatal(err)
	}
	f := cv.ToTT(6)
	c := minTT(t, f)
	if len(c) != 4 {
		t.Fatalf("Fig.4 function minimized to %d products: %v", len(c), c)
	}
}

func TestLimitEnforcement(t *testing.T) {
	small := Options{MaxVars: 3, MaxPrimes: 50000}
	_, err := MinimizeTT(truthtab.One(4), small)
	if err == nil {
		t.Fatal("expected MaxVars error")
	}
	tiny := Options{MaxVars: 12, MaxPrimes: 2}
	rng := rand.New(rand.NewSource(6))
	_, err = MinimizeTT(randTT(6, rng), tiny)
	if err == nil {
		t.Fatal("expected MaxPrimes error")
	}
}

func TestTieBreakLiterals(t *testing.T) {
	// Among minimum-product covers the minimizer must pick fewest
	// literals. For f = x1 + x1'x2 (= x1 + x2), the 2-product covers
	// from primes {x1, x2} only; check literals = 2.
	f := truthtab.Var(2, 0).Or(truthtab.Var(2, 1))
	c := minTT(t, f)
	if len(c) != 2 || c.TotalLiterals() != 2 {
		t.Fatalf("cover = %v", c)
	}
}
