// Package truthtab implements dense bitset truth tables for Boolean
// functions of up to 24 variables.
//
// A function f of n variables is stored as a bit vector of length 2^n:
// bit i holds f(a) where the assignment a sets variable k to bit k of i
// (variable 0 is the least significant index bit). Variables are
// conventionally displayed 1-indexed (x1 = variable 0) to match the
// notation of the DATE'17 paper this library reproduces.
//
// All operations return fresh values; a TT is never mutated after
// construction except through SetBit on a table the caller owns.
package truthtab

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/bits"
	"strconv"
	"strings"
)

// MaxVars is the largest supported number of variables. 2^24 bits = 2 MiB
// per table, which keeps exhaustive algorithms tractable while covering
// every function size used by the benchmark suite.
const MaxVars = 24

// TT is a truth table over n Boolean variables.
type TT struct {
	n int
	w []uint64
}

func words(n int) int {
	if n <= 6 {
		return 1
	}
	return 1 << (n - 6)
}

// mask returns the valid-bit mask for the last (only) word of an n-var
// table. For n >= 6 every word is fully used.
func mask(n int) uint64 {
	if n >= 6 {
		return ^uint64(0)
	}
	return (uint64(1) << (1 << n)) - 1
}

func checkN(n int) {
	if n < 0 || n > MaxVars {
		panic(fmt.Sprintf("truthtab: %d variables out of range [0,%d]", n, MaxVars))
	}
}

// New returns the constant-0 function of n variables.
func New(n int) TT {
	checkN(n)
	return TT{n: n, w: make([]uint64, words(n))}
}

// Zero returns the constant-0 function of n variables.
func Zero(n int) TT { return New(n) }

// One returns the constant-1 function of n variables.
func One(n int) TT {
	t := New(n)
	for i := range t.w {
		t.w[i] = ^uint64(0)
	}
	t.w[len(t.w)-1] &= mask(n)
	return t
}

// Var returns the projection function x_v of n variables.
func Var(n, v int) TT {
	checkN(n)
	if v < 0 || v >= n {
		panic(fmt.Sprintf("truthtab: variable %d out of range for %d-var table", v, n))
	}
	t := New(n)
	if v < 6 {
		// Pattern within each word: blocks of 2^v ones alternating.
		var p uint64
		blk := uint64(1)<<(1<<v) - 1
		for s := uint(1 << v); s < 64; s += uint(2 << v) {
			p |= blk << s
		}
		if n < 6 {
			p &= mask(n)
		}
		for i := range t.w {
			t.w[i] = p
		}
		return t
	}
	// Whole words alternate in runs of 2^(v-6).
	run := 1 << (v - 6)
	for i := range t.w {
		if (i/run)&1 == 1 {
			t.w[i] = ^uint64(0)
		}
	}
	return t
}

// Literal returns x_v (neg=false) or its complement (neg=true).
func Literal(n, v int, neg bool) TT {
	t := Var(n, v)
	if neg {
		return t.Not()
	}
	return t
}

// FromMinterms builds a function from the list of on-set minterm indices.
func FromMinterms(n int, ms []uint64) TT {
	t := New(n)
	for _, m := range ms {
		t.SetBit(m, true)
	}
	return t
}

// FromFunc builds an n-variable table by evaluating eval on every
// assignment. Assignment bit k is the value of variable k.
func FromFunc(n int, eval func(a uint64) bool) TT {
	checkN(n)
	t := New(n)
	size := uint64(1) << n
	for a := uint64(0); a < size; a++ {
		if eval(a) {
			t.SetBit(a, true)
		}
	}
	return t
}

// FromWords builds an n-variable table from a 64-bit word vector in the
// Words layout (assignment a is bit a&63 of word a>>6). Missing words
// are zero-filled, excess words must be zero, and unused high bits of
// the last word are masked off, so any prefix of a valid Words slice is
// accepted.
func FromWords(n int, w []uint64) (TT, error) {
	checkN(n)
	t := New(n)
	if len(w) > len(t.w) {
		for _, x := range w[len(t.w):] {
			if x != 0 {
				return TT{}, fmt.Errorf("truthtab: %d words overflow %d variables", len(w), n)
			}
		}
		w = w[:len(t.w)]
	}
	copy(t.w, w)
	t.w[len(t.w)-1] &= mask(n)
	return t, nil
}

// NumVars returns the number of variables n.
func (t TT) NumVars() int { return t.n }

// Size returns 2^n, the number of table entries.
func (t TT) Size() uint64 { return uint64(1) << t.n }

// Bit reports f at assignment a.
func (t TT) Bit(a uint64) bool {
	return t.w[a>>6]>>(a&63)&1 == 1
}

// Eval is an alias of Bit kept for readability at call sites.
func (t TT) Eval(a uint64) bool { return t.Bit(a) }

// SetBit sets f(a) to v in place.
func (t *TT) SetBit(a uint64, v bool) {
	if a >= t.Size() {
		panic(fmt.Sprintf("truthtab: minterm %d out of range for %d vars", a, t.n))
	}
	if v {
		t.w[a>>6] |= 1 << (a & 63)
	} else {
		t.w[a>>6] &^= 1 << (a & 63)
	}
}

// Clone returns an independent copy.
func (t TT) Clone() TT {
	c := TT{n: t.n, w: make([]uint64, len(t.w))}
	copy(c.w, t.w)
	return c
}

func (t TT) checkSame(u TT) {
	if t.n != u.n {
		panic(fmt.Sprintf("truthtab: mixing %d-var and %d-var tables", t.n, u.n))
	}
}

// And returns t ∧ u.
func (t TT) And(u TT) TT {
	t.checkSame(u)
	r := New(t.n)
	for i := range r.w {
		r.w[i] = t.w[i] & u.w[i]
	}
	return r
}

// Or returns t ∨ u.
func (t TT) Or(u TT) TT {
	t.checkSame(u)
	r := New(t.n)
	for i := range r.w {
		r.w[i] = t.w[i] | u.w[i]
	}
	return r
}

// Xor returns t ⊕ u.
func (t TT) Xor(u TT) TT {
	t.checkSame(u)
	r := New(t.n)
	for i := range r.w {
		r.w[i] = t.w[i] ^ u.w[i]
	}
	return r
}

// AndNot returns t ∧ ¬u.
func (t TT) AndNot(u TT) TT {
	t.checkSame(u)
	r := New(t.n)
	for i := range r.w {
		r.w[i] = t.w[i] &^ u.w[i]
	}
	return r
}

// Not returns ¬t.
func (t TT) Not() TT {
	r := New(t.n)
	for i := range r.w {
		r.w[i] = ^t.w[i]
	}
	r.w[len(r.w)-1] &= mask(t.n)
	return r
}

// Equal reports whether t and u are the same function.
func (t TT) Equal(u TT) bool {
	if t.n != u.n {
		return false
	}
	for i := range t.w {
		if t.w[i] != u.w[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether t is the constant-0 function.
func (t TT) IsZero() bool {
	for _, w := range t.w {
		if w != 0 {
			return false
		}
	}
	return true
}

// IsOne reports whether t is the constant-1 function.
func (t TT) IsOne() bool {
	return t.CountOnes() == t.Size()
}

// CountOnes returns |on-set|.
func (t TT) CountOnes() uint64 {
	var c uint64
	for _, w := range t.w {
		c += uint64(bits.OnesCount64(w))
	}
	return c
}

// Implies reports whether t ⇒ u (on-set containment).
func (t TT) Implies(u TT) bool {
	t.checkSame(u)
	for i := range t.w {
		if t.w[i]&^u.w[i] != 0 {
			return false
		}
	}
	return true
}

// Cofactor returns f with variable v fixed to val. The result is still an
// n-variable table, independent of variable v.
func (t TT) Cofactor(v int, val bool) TT {
	if v < 0 || v >= t.n {
		panic(fmt.Sprintf("truthtab: cofactor variable %d out of range", v))
	}
	r := New(t.n)
	if v < 6 {
		sh := uint(1) << v
		blk := uint64(1)<<(1<<v) - 1
		var sel uint64 // bits where xv == val within a word
		for s := uint(0); s < 64; s += 2 * sh {
			if val {
				sel |= blk << (s + sh)
			} else {
				sel |= blk << s
			}
		}
		for i, w := range t.w {
			kept := w & sel
			if val {
				r.w[i] = kept | kept>>sh
			} else {
				r.w[i] = kept | kept<<sh
			}
		}
		if t.n < 6 {
			r.w[0] &= mask(t.n)
		}
		return r
	}
	run := 1 << (v - 6)
	// Pick the source half for every word.
	for i := range r.w {
		hi := (i/run)&1 == 1
		src := i
		if val && !hi {
			src = i + run
		}
		if !val && hi {
			src = i - run
		}
		r.w[i] = t.w[src]
	}
	return r
}

// Restrict is an alias for Cofactor: f|x_v=val.
func (t TT) Restrict(v int, val bool) TT { return t.Cofactor(v, val) }

// DependsOn reports whether f actually depends on variable v.
func (t TT) DependsOn(v int) bool {
	return !t.Cofactor(v, false).Equal(t.Cofactor(v, true))
}

// Support returns the variables f depends on, ascending.
func (t TT) Support() []int {
	var s []int
	for v := 0; v < t.n; v++ {
		if t.DependsOn(v) {
			s = append(s, v)
		}
	}
	return s
}

// Dual returns the dual function f^D(x) = ¬f(¬x).
func (t TT) Dual() TT {
	r := New(t.n)
	all := t.Size() - 1
	for a := uint64(0); a < t.Size(); a++ {
		if !t.Bit(all ^ a) {
			r.SetBit(a, true)
		}
	}
	return r
}

// IsSelfDual reports whether f equals its dual.
func (t TT) IsSelfDual() bool { return t.Equal(t.Dual()) }

// Minterms returns the on-set minterm indices, ascending.
func (t TT) Minterms() []uint64 {
	ms := make([]uint64, 0, t.CountOnes())
	t.ForEachMinterm(func(a uint64) { ms = append(ms, a) })
	return ms
}

// ForEachMinterm calls fn for every on-set minterm, ascending.
func (t TT) ForEachMinterm(fn func(a uint64)) {
	for i, w := range t.w {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(uint64(i)<<6 | uint64(b))
			w &^= 1 << b
		}
	}
}

// Permute returns g with g(y) = f(x) where y assigns to variable perm[v]
// the value x assigns to variable v. perm must be a permutation of [0,n).
func (t TT) Permute(perm []int) TT {
	if len(perm) != t.n {
		panic("truthtab: permutation length mismatch")
	}
	seen := make([]bool, t.n)
	for _, p := range perm {
		if p < 0 || p >= t.n || seen[p] {
			panic("truthtab: invalid permutation")
		}
		seen[p] = true
	}
	r := New(t.n)
	t.ForEachMinterm(func(a uint64) {
		var b uint64
		for v := 0; v < t.n; v++ {
			if a>>uint(v)&1 == 1 {
				b |= 1 << uint(perm[v])
			}
		}
		r.SetBit(b, true)
	})
	return r
}

// Extend returns the same function expressed over m >= n variables (the
// added variables are don't-cares the function ignores).
func (t TT) Extend(m int) TT {
	if m < t.n {
		panic("truthtab: Extend to fewer variables")
	}
	checkN(m)
	if m == t.n {
		return t.Clone()
	}
	r := New(m)
	size := uint64(1) << m
	msk := t.Size() - 1
	for a := uint64(0); a < size; a++ {
		if t.Bit(a & msk) {
			r.SetBit(a, true)
		}
	}
	return r
}

// CompactSupport re-expresses f over only its support variables. It
// returns the compacted table and vars, the original index of each new
// variable (new variable i was original vars[i]).
func (t TT) CompactSupport() (TT, []int) {
	sup := t.Support()
	k := len(sup)
	r := New(k)
	// For every assignment of the support vars, evaluate f with
	// non-support vars at 0.
	for a := uint64(0); a < uint64(1)<<k; a++ {
		var full uint64
		for i, v := range sup {
			if a>>uint(i)&1 == 1 {
				full |= 1 << uint(v)
			}
		}
		if t.Bit(full) {
			r.SetBit(a, true)
		}
	}
	return r, sup
}

// NumWords returns the length of the Words vector: ceil(2^n / 64),
// minimum one.
func (t TT) NumWords() int { return len(t.w) }

// Word returns word i of the Words vector without copying. Bit-parallel
// evaluators compare against tables word-by-word through this accessor
// so their steady-state loops stay allocation-free.
func (t TT) Word(i int) uint64 { return t.w[i] }

// Words returns a copy of the backing bit vector, least significant
// word first. The slice has exactly ceil(2^n / 64) entries (one word
// minimum) and unused high bits of the last word are zero, so the
// result is a canonical serialization of the function.
func (t TT) Words() []uint64 {
	w := make([]uint64, len(t.w))
	copy(w, t.w)
	return w
}

// Hash64 returns a 64-bit FNV-1a hash of the function (variable count
// and table bits). It is deterministic across processes and suitable
// for sharding or as a fast pre-filter; exact-match callers must still
// compare with Equal.
func (t TT) Hash64() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(t.n))
	h.Write(buf[:])
	for _, w := range t.w {
		binary.LittleEndian.PutUint64(buf[:], w)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Parse decodes the String representation "n:0xHEX" back into a table.
// It accepts any hex string whose bits fit in 2^n table entries.
func Parse(s string) (TT, error) {
	colon := strings.IndexByte(s, ':')
	if colon < 0 {
		return TT{}, fmt.Errorf("truthtab: missing ':' in %q", s)
	}
	n, err := strconv.Atoi(s[:colon])
	if err != nil || strconv.Itoa(n) != s[:colon] { // reject "+3", "03", "3x"
		return TT{}, fmt.Errorf("truthtab: bad variable count %q in %q", s[:colon], s)
	}
	if n < 0 || n > MaxVars {
		return TT{}, fmt.Errorf("truthtab: %d variables out of range [0,%d]", n, MaxVars)
	}
	hex := s[colon+1:]
	if strings.HasPrefix(hex, "0x") || strings.HasPrefix(hex, "0X") {
		hex = hex[2:]
	}
	if hex == "" {
		return TT{}, fmt.Errorf("truthtab: empty table in %q", s)
	}
	t := New(n)
	// Consume hex digits from the least significant end.
	for i := 0; i < len(hex); i++ {
		c := hex[len(hex)-1-i]
		var v uint64
		switch {
		case c >= '0' && c <= '9':
			v = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			v = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			v = uint64(c-'A') + 10
		default:
			return TT{}, fmt.Errorf("truthtab: bad hex digit %q in %q", c, s)
		}
		if v == 0 {
			continue
		}
		word, shift := i/16, uint(i%16*4)
		if word >= len(t.w) || (word == len(t.w)-1 && v<<shift&^mask(n) != 0) {
			return TT{}, fmt.Errorf("truthtab: table %q overflows %d variables", s, n)
		}
		t.w[word] |= v << shift
	}
	return t, nil
}

// String renders the table as a hex string, most significant word first,
// prefixed by the variable count, e.g. "3:0x96".
func (t TT) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d:0x", t.n)
	started := false
	for i := len(t.w) - 1; i >= 0; i-- {
		if !started {
			if t.w[i] == 0 && i > 0 {
				continue
			}
			fmt.Fprintf(&sb, "%x", t.w[i])
			started = true
		} else {
			fmt.Fprintf(&sb, "%016x", t.w[i])
		}
	}
	return sb.String()
}
