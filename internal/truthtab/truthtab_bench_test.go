package truthtab

import (
	"math/rand"
	"testing"
)

func benchTT(n int, seed int64) TT {
	rng := rand.New(rand.NewSource(seed))
	t := New(n)
	for a := uint64(0); a < t.Size(); a++ {
		if rng.Intn(2) == 1 {
			t.SetBit(a, true)
		}
	}
	return t
}

func BenchmarkAnd16Var(b *testing.B) {
	x, y := benchTT(16, 1), benchTT(16, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.And(y)
	}
}

func BenchmarkCofactor16Var(b *testing.B) {
	x := benchTT(16, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Cofactor(i%16, i&1 == 1)
	}
}

func BenchmarkDual12Var(b *testing.B) {
	x := benchTT(12, 4)
	for i := 0; i < b.N; i++ {
		x.Dual()
	}
}

func BenchmarkSupport16Var(b *testing.B) {
	x := benchTT(16, 5)
	for i := 0; i < b.N; i++ {
		x.Support()
	}
}
