package truthtab

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randTT builds a reproducible random table.
func randTT(n int, rng *rand.Rand) TT {
	t := New(n)
	for a := uint64(0); a < t.Size(); a++ {
		if rng.Intn(2) == 1 {
			t.SetBit(a, true)
		}
	}
	return t
}

func TestConstants(t *testing.T) {
	for n := 0; n <= 10; n++ {
		z, o := Zero(n), One(n)
		if !z.IsZero() {
			t.Fatalf("Zero(%d) not zero", n)
		}
		if !o.IsOne() {
			t.Fatalf("One(%d) not one: count %d of %d", n, o.CountOnes(), o.Size())
		}
		if z.Equal(o) && n >= 0 {
			t.Fatalf("Zero(%d) == One(%d)", n, n)
		}
		if got := o.CountOnes(); got != uint64(1)<<n {
			t.Fatalf("One(%d) popcount = %d", n, got)
		}
	}
}

func TestVarProjection(t *testing.T) {
	for n := 1; n <= 9; n++ {
		for v := 0; v < n; v++ {
			tv := Var(n, v)
			for a := uint64(0); a < tv.Size(); a++ {
				want := a>>uint(v)&1 == 1
				if tv.Bit(a) != want {
					t.Fatalf("Var(%d,%d) at %b = %v, want %v", n, v, a, tv.Bit(a), want)
				}
			}
		}
	}
}

func TestLiteral(t *testing.T) {
	lit := Literal(3, 1, true)
	for a := uint64(0); a < 8; a++ {
		want := a>>1&1 == 0
		if lit.Bit(a) != want {
			t.Fatalf("x1' at %b = %v", a, lit.Bit(a))
		}
	}
}

func TestBooleanOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 0; n <= 9; n++ {
		f, g := randTT(n, rng), randTT(n, rng)
		and, or, xor, andn, not := f.And(g), f.Or(g), f.Xor(g), f.AndNot(g), f.Not()
		for a := uint64(0); a < f.Size(); a++ {
			fb, gb := f.Bit(a), g.Bit(a)
			if and.Bit(a) != (fb && gb) {
				t.Fatalf("n=%d And wrong at %d", n, a)
			}
			if or.Bit(a) != (fb || gb) {
				t.Fatalf("n=%d Or wrong at %d", n, a)
			}
			if xor.Bit(a) != (fb != gb) {
				t.Fatalf("n=%d Xor wrong at %d", n, a)
			}
			if andn.Bit(a) != (fb && !gb) {
				t.Fatalf("n=%d AndNot wrong at %d", n, a)
			}
			if not.Bit(a) != !fb {
				t.Fatalf("n=%d Not wrong at %d", n, a)
			}
		}
	}
}

func TestDeMorgan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 0; n <= 8; n++ {
		f, g := randTT(n, rng), randTT(n, rng)
		lhs := f.And(g).Not()
		rhs := f.Not().Or(g.Not())
		if !lhs.Equal(rhs) {
			t.Fatalf("De Morgan failed at n=%d", n)
		}
	}
}

func TestCofactorSmallAndLargeVars(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 3, 6, 7, 8, 9} {
		f := randTT(n, rng)
		for v := 0; v < n; v++ {
			for _, val := range []bool{false, true} {
				c := f.Cofactor(v, val)
				if c.DependsOn(v) {
					t.Fatalf("cofactor still depends on x%d", v)
				}
				for a := uint64(0); a < f.Size(); a++ {
					// Force bit v of a to val and compare with f.
					b := a &^ (1 << uint(v))
					if val {
						b |= 1 << uint(v)
					}
					if c.Bit(a) != f.Bit(b) {
						t.Fatalf("n=%d cofactor(x%d=%v) wrong at %d", n, v, val, a)
					}
				}
			}
		}
	}
}

func TestShannonExpansion(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{2, 5, 7, 8} {
		f := randTT(n, rng)
		for v := 0; v < n; v++ {
			x := Var(n, v)
			recon := x.Not().And(f.Cofactor(v, false)).Or(x.And(f.Cofactor(v, true)))
			if !recon.Equal(f) {
				t.Fatalf("Shannon expansion failed n=%d v=%d", n, v)
			}
		}
	}
}

func TestDualInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for n := 0; n <= 8; n++ {
		f := randTT(n, rng)
		if !f.Dual().Dual().Equal(f) {
			t.Fatalf("dual(dual(f)) != f at n=%d", n)
		}
	}
}

func TestDualKnown(t *testing.T) {
	// dual(x1·x2) = x1 + x2
	n := 2
	and := Var(n, 0).And(Var(n, 1))
	or := Var(n, 0).Or(Var(n, 1))
	if !and.Dual().Equal(or) {
		t.Fatal("dual(AND) != OR")
	}
	if !or.Dual().Equal(and) {
		t.Fatal("dual(OR) != AND")
	}
	// Majority of 3 is self-dual.
	maj := FromFunc(3, func(a uint64) bool {
		c := a&1 + a>>1&1 + a>>2&1
		return c >= 2
	})
	if !maj.IsSelfDual() {
		t.Fatal("maj3 not self-dual")
	}
	// XOR of 2 vars: dual(x⊕y) = XNOR? dual(f)(x) = !f(!x); f=x⊕y at
	// complemented args is still x⊕y, so dual = ¬(x⊕y).
	xor := Var(2, 0).Xor(Var(2, 1))
	if !xor.Dual().Equal(xor.Not()) {
		t.Fatal("dual(xor2) wrong")
	}
}

func TestDualDeMorganProperty(t *testing.T) {
	// dual(f·g) = dual(f)+dual(g); dual(f+g) = dual(f)·dual(g)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 20; i++ {
		n := 1 + rng.Intn(7)
		f, g := randTT(n, rng), randTT(n, rng)
		if !f.And(g).Dual().Equal(f.Dual().Or(g.Dual())) {
			t.Fatal("dual(f·g) != fD+gD")
		}
		if !f.Or(g).Dual().Equal(f.Dual().And(g.Dual())) {
			t.Fatal("dual(f+g) != fD·gD")
		}
	}
}

func TestSupportAndCompact(t *testing.T) {
	// f = x0 ⊕ x2 over 4 vars: support {0,2}.
	f := Var(4, 0).Xor(Var(4, 2))
	sup := f.Support()
	if len(sup) != 2 || sup[0] != 0 || sup[1] != 2 {
		t.Fatalf("support = %v", sup)
	}
	c, vars := f.CompactSupport()
	if c.NumVars() != 2 || len(vars) != 2 {
		t.Fatalf("compact = %d vars", c.NumVars())
	}
	want := Var(2, 0).Xor(Var(2, 1))
	if !c.Equal(want) {
		t.Fatalf("compacted function wrong: %v", c)
	}
}

func TestExtendPreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := randTT(3, rng)
	g := f.Extend(6)
	if g.NumVars() != 6 {
		t.Fatal("extend var count")
	}
	for a := uint64(0); a < g.Size(); a++ {
		if g.Bit(a) != f.Bit(a&7) {
			t.Fatalf("extend wrong at %d", a)
		}
	}
	for v := 3; v < 6; v++ {
		if g.DependsOn(v) {
			t.Fatalf("extended function depends on x%d", v)
		}
	}
}

func TestPermute(t *testing.T) {
	// Swap variables 0 and 1 of f = x0·¬x1.
	f := Var(2, 0).And(Var(2, 1).Not())
	g := f.Permute([]int{1, 0})
	want := Var(2, 1).And(Var(2, 0).Not())
	if !g.Equal(want) {
		t.Fatal("permute swap wrong")
	}
	// Identity permutation.
	rng := rand.New(rand.NewSource(8))
	h := randTT(5, rng)
	if !h.Permute([]int{0, 1, 2, 3, 4}).Equal(h) {
		t.Fatal("identity permute changed function")
	}
}

func TestPermuteComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := randTT(4, rng)
	p := []int{2, 0, 3, 1}
	inv := make([]int, 4)
	for i, v := range p {
		inv[v] = i
	}
	if !f.Permute(p).Permute(inv).Equal(f) {
		t.Fatal("permute inverse failed")
	}
}

func TestMintermsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for n := 0; n <= 8; n++ {
		f := randTT(n, rng)
		g := FromMinterms(n, f.Minterms())
		if !g.Equal(f) {
			t.Fatalf("minterm round trip failed n=%d", n)
		}
		if uint64(len(f.Minterms())) != f.CountOnes() {
			t.Fatal("minterm count mismatch")
		}
	}
}

func TestImplies(t *testing.T) {
	a := Var(3, 0).And(Var(3, 1))
	b := Var(3, 0)
	if !a.Implies(b) {
		t.Fatal("x0x1 should imply x0")
	}
	if b.Implies(a) {
		t.Fatal("x0 should not imply x0x1")
	}
}

func TestFromFunc(t *testing.T) {
	f := FromFunc(3, func(a uint64) bool { return a == 5 })
	if f.CountOnes() != 1 || !f.Bit(5) {
		t.Fatal("FromFunc single minterm wrong")
	}
}

func TestQuickDualInvolution(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}
	prop := func(bitsv uint64, nRaw uint8) bool {
		n := int(nRaw%6) + 1
		f := New(n)
		for a := uint64(0); a < f.Size(); a++ {
			if bitsv>>(a%64)&1 == 1 {
				f.SetBit(a, true)
			}
			bitsv = bitsv*6364136223846793005 + 1442695040888963407
		}
		return f.Dual().Dual().Equal(f)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDoubleNegation(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(12))}
	prop := func(seed int64, nRaw uint8) bool {
		n := int(nRaw % 10)
		f := randTT(n, rand.New(rand.NewSource(seed)))
		return f.Not().Not().Equal(f)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestStringForm(t *testing.T) {
	f := FromMinterms(3, []uint64{1, 2})
	if f.String() != "3:0x6" {
		t.Fatalf("String = %q", f.String())
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("New(-1)", func() { New(-1) })
	mustPanic("New(25)", func() { New(25) })
	mustPanic("Var out of range", func() { Var(3, 3) })
	mustPanic("mixed sizes", func() { New(2).And(New(3)) })
	mustPanic("bad permutation", func() { New(2).Permute([]int{0, 0}) })
	mustPanic("extend shrink", func() { New(3).Extend(2) })
}

func TestParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for n := 0; n <= 9; n++ {
		for trial := 0; trial < 8; trial++ {
			f := randTT(n, rng)
			g, err := Parse(f.String())
			if err != nil {
				t.Fatalf("Parse(%q): %v", f.String(), err)
			}
			if !g.Equal(f) {
				t.Fatalf("round trip changed %v into %v", f, g)
			}
		}
	}
}

func TestParseForms(t *testing.T) {
	for _, s := range []string{"3:0x96", "3:0X96", "3:96", "3:0x0096"} {
		f, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		want := FromMinterms(3, []uint64{1, 2, 4, 7})
		if !f.Equal(want) {
			t.Fatalf("Parse(%q) = %v, want %v", s, f, want)
		}
	}
	for _, s := range []string{"", "0x96", "3:", "3:0x", "-1:0x1", "25:0x1", "2:0x1f", "3:zz", "x:0x1", "3x:0x96", "+3:0x96", "03:0x96", "3 4:0x96"} {
		if _, err := Parse(s); err == nil {
			t.Fatalf("Parse(%q) accepted invalid input", s)
		}
	}
}

func TestWordsCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := randTT(8, rng)
	w := f.Words()
	if len(w) != 4 {
		t.Fatalf("8-var table has %d words, want 4", len(w))
	}
	w[0] = ^w[0] // mutating the copy must not touch the table
	if f.Words()[0] == w[0] {
		t.Fatal("Words returned the backing slice, not a copy")
	}
}

func TestHash64(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	seen := make(map[uint64]TT)
	for n := 1; n <= 8; n++ {
		for trial := 0; trial < 50; trial++ {
			f := randTT(n, rng)
			h := f.Hash64()
			if h != f.Clone().Hash64() {
				t.Fatal("Hash64 not deterministic")
			}
			if prev, ok := seen[h]; ok && !prev.Equal(f) {
				// Collisions are legal but wildly unlikely in 400 draws.
				t.Logf("hash collision between %v and %v", prev, f)
			}
			seen[h] = f
		}
	}
	if Zero(3).Hash64() == Zero(4).Hash64() {
		t.Fatal("variable count not hashed")
	}
}

func TestFromWordsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for n := 0; n <= 8; n++ {
		for trial := 0; trial < 20; trial++ {
			f := randTT(n, rng)
			g, err := FromWords(n, f.Words())
			if err != nil || !g.Equal(f) {
				t.Fatalf("n=%d: FromWords(Words()) = %v (err %v), want %v", n, g, err, f)
			}
			if f.NumWords() != len(f.Words()) {
				t.Fatalf("n=%d: NumWords %d != len(Words) %d", n, f.NumWords(), len(f.Words()))
			}
			for i := 0; i < f.NumWords(); i++ {
				if f.Word(i) != f.Words()[i] {
					t.Fatalf("n=%d: Word(%d) mismatch", n, i)
				}
			}
		}
	}
	// Unused high bits of a short table are masked off.
	g, err := FromWords(2, []uint64{^uint64(0)})
	if err != nil || !g.IsOne() || g.Words()[0] != 0xf {
		t.Fatalf("masking: %v (err %v)", g, err)
	}
	// A truncated word vector zero-fills; excess nonzero words reject.
	if g, err = FromWords(7, []uint64{5}); err != nil || g.Word(0) != 5 || g.Word(1) != 0 {
		t.Fatalf("zero-fill: %v (err %v)", g, err)
	}
	if _, err = FromWords(2, []uint64{1, 1}); err == nil {
		t.Fatal("overflowing words accepted")
	}
}
