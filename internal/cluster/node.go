// Package cluster is the horizontal scale-out tier for xbarserverd: a
// static-membership cluster of nodes that partition the synthesis
// cache by consistent hashing over core.CacheKey, heartbeat each other
// over the existing HTTP surface, fill cold cache slots from the key's
// owner before synthesizing, and warm-start restarted nodes by
// shipping whole cache snapshots peer-to-peer.
//
// The headline property is graceful survival of node failure
// mid-workload: every remote interaction sits behind the failover
// ladder owner → fallback replica → local serving, so the worst case
// of any peer dying is local synthesis (slower, never wrong, never an
// untyped error). Membership state walks are driven exclusively by the
// injected resilience.Clock, which is what makes the
// alive→suspect→dead→alive ladder exactly testable with
// resilience.Fake — the same clock discipline xbarvet already enforces
// on the resilience package itself.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"nanoxbar/internal/core"
	"nanoxbar/internal/engine"
	"nanoxbar/internal/resilience"
)

// ForwardedHeader marks a synthesis request that already crossed one
// node-to-node hop. The receiving node serves it locally regardless of
// ring ownership — membership views can disagree transiently, and
// without the marker two nodes that each believe the other owns a key
// would forward it back and forth forever.
const ForwardedHeader = "X-Nanoxbar-Forwarded"

// Peer route paths, served by internal/httpapi behind the same
// protect/instrument middleware as the public surface.
const (
	FillPath     = "/internal/v1/peer/fill"
	SnapshotPath = "/internal/v1/peer/snapshot"
)

// Config wires a Node. NodeID and the Peers map are the static
// membership universe; liveness within it is the failure detector's
// job.
type Config struct {
	// NodeID is this node's unique member id (required).
	NodeID string
	// Advertise is the base URL peers use to reach this node,
	// e.g. "http://10.0.0.1:8080". Informational in Status; peers dial
	// the URL from their own Peers map.
	Advertise string
	// Peers maps member id → base URL for every *other* node. An entry
	// matching NodeID is ignored, so all nodes can share one flag value.
	Peers map[string]string

	// ProbeInterval is the heartbeat period (default 500ms).
	ProbeInterval time.Duration
	// SuspectAfter demotes a peer to suspect after this long without a
	// successful probe (default 3×ProbeInterval).
	SuspectAfter time.Duration
	// DeadAfter removes a peer from the ring after this long without a
	// successful probe (default 2×SuspectAfter).
	DeadAfter time.Duration
	// ProbeTimeout bounds one heartbeat round-trip (default 1s).
	ProbeTimeout time.Duration
	// FillTimeout bounds one peer cache-fill round-trip (default 2s) —
	// a fill blocks a cold synthesis, so it must give up well before
	// the caller's deadline and fall through to local compute.
	FillTimeout time.Duration
	// SnapshotTimeout bounds a warm-start snapshot transfer (default 30s).
	SnapshotTimeout time.Duration

	// Vnodes is the virtual-node count per ring member (default 64).
	Vnodes int

	// Clock drives probes, suspicion timeouts, breakers, and retries
	// (default the wall clock; tests inject resilience.Fake).
	Clock resilience.Clock
	// Seed feeds the retry jitter RNG.
	Seed int64
	// HTTPClient performs all node-to-node requests (default a fresh
	// client on the default transport). The cluster soak injects a
	// seeded resilience.ChaosTransport here to model partitions.
	HTTPClient *http.Client
	// Breaker configures the per-peer, per-endpoint circuit breakers.
	Breaker resilience.BreakerConfig
	// Retry configures the peer-fill retry policy. Default: 2 attempts,
	// 10ms base delay — fills race local synthesis, so the budget is
	// deliberately tiny compared to the client-facing policy.
	Retry resilience.RetryPolicy

	Logger *slog.Logger
}

// peerState is one remote member plus its per-endpoint breakers. Fill
// and forward trip independently: a peer whose cache lookups time out
// may still proxy full syntheses fine, and vice versa.
type peerState struct {
	id      string
	url     string
	fill    *resilience.Breaker
	forward *resilience.Breaker
}

// Node is one cluster member: failure detector + hash ring + peer
// client, wrapped around the local engine.
type Node struct {
	id        string
	advertise string
	eng       *engine.Engine
	clock     resilience.Clock
	logger    *slog.Logger
	hc        *http.Client

	probeInterval   time.Duration
	probeTimeout    time.Duration
	fillTimeout     time.Duration
	snapshotTimeout time.Duration
	vnodes          int

	det     *Detector
	peers   map[string]*peerState
	retrier *resilience.Retrier

	ringMu      sync.RWMutex
	ring        *Ring
	ringVersion uint64

	leaving atomic.Bool

	peerFillHits   atomic.Uint64
	peerFillMisses atomic.Uint64
	forwards       atomic.Uint64
	failovers      atomic.Uint64
	localDegrades  atomic.Uint64
}

// New builds a Node around eng. The initial ring contains every
// configured member (peers start optimistically alive); Run starts the
// heartbeat loop that maintains it. New also registers the cluster
// metrics on the engine's telemetry registry.
func New(eng *engine.Engine, cfg Config) (*Node, error) {
	if cfg.NodeID == "" {
		return nil, fmt.Errorf("cluster: NodeID is required")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 3 * cfg.ProbeInterval
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 2 * cfg.SuspectAfter
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.FillTimeout <= 0 {
		cfg.FillTimeout = 2 * time.Second
	}
	if cfg.SnapshotTimeout <= 0 {
		cfg.SnapshotTimeout = 30 * time.Second
	}
	if cfg.Vnodes <= 0 {
		cfg.Vnodes = defaultVnodes
	}
	if cfg.Clock == nil {
		cfg.Clock = resilience.Wall()
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{}
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	if cfg.Retry.MaxAttempts == 0 {
		cfg.Retry = resilience.RetryPolicy{MaxAttempts: 2, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
	}
	n := &Node{
		id:              cfg.NodeID,
		advertise:       cfg.Advertise,
		eng:             eng,
		clock:           cfg.Clock,
		logger:          cfg.Logger,
		hc:              cfg.HTTPClient,
		probeInterval:   cfg.ProbeInterval,
		probeTimeout:    cfg.ProbeTimeout,
		fillTimeout:     cfg.FillTimeout,
		snapshotTimeout: cfg.SnapshotTimeout,
		vnodes:          cfg.Vnodes,
		peers:           make(map[string]*peerState),
		retrier:         resilience.NewRetrier(cfg.Retry, cfg.Clock, cfg.Seed),
	}
	n.det = newDetector(cfg.Clock, cfg.SuspectAfter, cfg.DeadAfter, func(id string, from, to State) {
		n.logger.Info("cluster member transition", "peer", id, "from", from.String(), "to", to.String())
	})
	for id, url := range cfg.Peers {
		if id == n.id || id == "" || url == "" {
			continue
		}
		n.peers[id] = &peerState{
			id:      id,
			url:     url,
			fill:    resilience.NewBreaker(cfg.Breaker, cfg.Clock, nil),
			forward: resilience.NewBreaker(cfg.Breaker, cfg.Clock, nil),
		}
		n.det.add(id, url)
	}
	n.rebuildRing()
	n.registerMetrics(eng.Registry())
	return n, nil
}

// ID returns the node's member id.
func (n *Node) ID() string { return n.id }

// Engine returns the wrapped local engine.
func (n *Node) Engine() *engine.Engine { return n.eng }

// Leaving reports whether Leave has been called.
func (n *Node) Leaving() bool { return n.leaving.Load() }

// Leave de-registers the node from the ring ahead of a drain: local
// routing stops forwarding and filling, and peers that probe the
// /healthz cluster block while the process drains see leaving=true and
// drop this node from their rings immediately instead of waiting out
// the suspicion timeout.
func (n *Node) Leave() {
	if n.leaving.CompareAndSwap(false, true) {
		n.logger.Info("cluster leave", "node", n.id)
	}
}

// rebuildRing recomputes the ring from the detector's current view
// plus self (unless leaving).
func (n *Node) rebuildRing() {
	members := n.det.Ringable()
	if !n.leaving.Load() {
		members = append(members, n.id)
	}
	ring := NewRing(members, n.vnodes)
	n.ringMu.Lock()
	n.ring = ring
	n.ringVersion = n.det.Version()
	n.ringMu.Unlock()
}

// currentRing returns the live ring.
func (n *Node) currentRing() *Ring {
	n.ringMu.RLock()
	defer n.ringMu.RUnlock()
	return n.ring
}

// refreshRing rebuilds the ring only when membership changed since the
// last build.
func (n *Node) refreshRing() {
	n.ringMu.RLock()
	stale := n.ringVersion != n.det.Version()
	n.ringMu.RUnlock()
	if stale {
		n.rebuildRing()
	}
}

// Run drives the heartbeat loop until ctx is done: probe every peer,
// age the detector, refresh the ring, sleep one probe interval on the
// injected clock. Call it in its own goroutine.
func (n *Node) Run(ctx context.Context) {
	for {
		n.probeAll(ctx)
		n.det.Tick()
		n.refreshRing()
		if err := n.clock.Sleep(ctx, n.probeInterval); err != nil {
			return
		}
	}
}

// probeAll heartbeats every peer concurrently, bounded by ProbeTimeout.
func (n *Node) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, p := range n.peers {
		wg.Add(1)
		go func(p *peerState) {
			defer wg.Done()
			n.probe(ctx, p)
		}(p)
	}
	wg.Wait()
}

// probeBody is the slice of the /healthz response the prober reads.
type probeBody struct {
	Cluster struct {
		Leaving bool `json:"leaving"`
	} `json:"cluster"`
}

// probe runs one heartbeat against p and feeds the outcome to the
// detector. A peer that reports leaving is pinned dead on the spot.
func (n *Node) probe(ctx context.Context, p *peerState) {
	pctx, cancel := context.WithTimeout(ctx, n.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, p.url+"/healthz", nil)
	if err != nil {
		return
	}
	resp, err := n.hc.Do(req)
	if err != nil {
		n.det.Observe(p.id, false)
		return
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		n.det.Observe(p.id, false)
		return
	}
	var body probeBody
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body); err != nil {
		n.det.Observe(p.id, false)
		return
	}
	if body.Cluster.Leaving {
		n.det.MarkLeft(p.id)
		return
	}
	n.det.Observe(p.id, true)
}

// fillTargets resolves the peer-fill ladder for key: the owner first,
// then one fallback replica, both remote and ring-live. nil when the
// key is self-owned or the ring is (effectively) a singleton.
func (n *Node) fillTargets(key string) []*peerState {
	ring := n.currentRing()
	if ring == nil || ring.Size() <= 1 {
		return nil
	}
	owner, ok := ring.Owner(key)
	if !ok || owner == n.id {
		return nil
	}
	var out []*peerState
	for _, id := range ring.Replicas(key, 3) {
		if id == n.id {
			continue
		}
		if p, ok := n.peers[id]; ok {
			out = append(out, p)
		}
		if len(out) == 2 { // owner + one fallback
			break
		}
	}
	return out
}

// PeerFill is the engine cache-miss hook: before a cold synthesis, ask
// the key's owner (and on failure or breaker-open, one fallback
// replica) for its cached Implementation. Returns nil on any miss or
// failure — the engine then synthesizes locally, so this path can only
// ever make a cold miss cheaper, never fail it. Wire it with
// engine.SetPeerFill.
func (n *Node) PeerFill(ctx context.Context, key string) *core.Implementation {
	if n.leaving.Load() {
		return nil
	}
	targets := n.fillTargets(key)
	if len(targets) == 0 {
		return nil
	}
	for _, p := range targets {
		if imp := n.fillFrom(ctx, p, key); imp != nil {
			n.peerFillHits.Add(1)
			return imp
		}
	}
	n.peerFillMisses.Add(1)
	return nil
}

// Status is the cluster block surfaced in /healthz, /stats, and the
// xbarload cluster report.
type Status struct {
	NodeID         string         `json:"node_id"`
	Advertise      string         `json:"advertise,omitempty"`
	Leaving        bool           `json:"leaving"`
	RingMembers    int            `json:"ring_members"`
	Members        []MemberStatus `json:"members,omitempty"`
	PeerFillHits   uint64         `json:"peer_fill_hits"`
	PeerFillMisses uint64         `json:"peer_fill_misses"`
	Forwards       uint64         `json:"forwards"`
	Failovers      uint64         `json:"failovers"`
	LocalDegrades  uint64         `json:"local_degrades"`
}

// Status snapshots the node's cluster view.
func (n *Node) Status() Status {
	ring := n.currentRing()
	size := 0
	if ring != nil {
		size = ring.Size()
	}
	return Status{
		NodeID:         n.id,
		Advertise:      n.advertise,
		Leaving:        n.leaving.Load(),
		RingMembers:    size,
		Members:        n.det.Members(),
		PeerFillHits:   n.peerFillHits.Load(),
		PeerFillMisses: n.peerFillMisses.Load(),
		Forwards:       n.forwards.Load(),
		Failovers:      n.failovers.Load(),
		LocalDegrades:  n.localDegrades.Load(),
	}
}
