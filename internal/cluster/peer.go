package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"nanoxbar/internal/apierr"
	"nanoxbar/internal/cachestore"
	"nanoxbar/internal/core"
	"nanoxbar/internal/engine"
	"nanoxbar/internal/resilience"
)

// errFillMiss marks a clean 204 from a peer: the peer is healthy, it
// just doesn't have the key. Distinguished from transport failure so
// the breaker records a success and the retrier stops immediately.
var errFillMiss = errors.New("cluster: peer fill miss")

// maxFillBody bounds one shipped cache entry. Implementations are a
// few KB of lattice cells; 16MB matches the HTTP layer's body cap.
const maxFillBody = 16 << 20

// WriteFill encodes the locally cached implementation for key as a
// one-entry cachestore snapshot, the same structural wire format the
// disk persistence uses. ok=false means the key is not in the local
// cache (the HTTP layer answers 204).
func WriteFill(eng *engine.Engine, w io.Writer, key string) (ok bool, err error) {
	imp, ok := eng.PeekCached(key)
	if !ok {
		return false, nil
	}
	return true, cachestore.Write(w, core.Fingerprint(), []cachestore.Entry{{Key: key, Imp: imp}})
}

// readFill decodes a one-entry fill response body.
func readFill(r io.Reader, key string) (*core.Implementation, error) {
	_, entries, err := cachestore.Read(io.LimitReader(r, maxFillBody), core.Fingerprint())
	if err != nil {
		return nil, err
	}
	if len(entries) != 1 || entries[0].Key != key || entries[0].Imp == nil {
		return nil, fmt.Errorf("cluster: fill response does not carry key %.16s…", key)
	}
	return entries[0].Imp, nil
}

// fillFrom asks one peer for key's cached implementation, guarded by
// that peer's fill breaker and the node retry policy. nil on any miss
// or failure.
func (n *Node) fillFrom(ctx context.Context, p *peerState, key string) *core.Implementation {
	fctx, cancel := context.WithTimeout(ctx, n.fillTimeout)
	defer cancel()
	var imp *core.Implementation
	err := n.retrier.Do(fctx, func(ctx context.Context, _ int) error {
		if err := p.fill.Allow(); err != nil {
			return resilience.Abort(err)
		}
		got, err := n.fillOnce(ctx, p, key)
		if errors.Is(err, errFillMiss) {
			p.fill.Report(true)
			return resilience.Abort(err)
		}
		p.fill.Report(err == nil)
		if err != nil {
			return err
		}
		imp = got
		return nil
	})
	if err != nil {
		return nil
	}
	return imp
}

func (n *Node) fillOnce(ctx context.Context, p *peerState, key string) (*core.Implementation, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		p.url+FillPath+"?key="+url.QueryEscape(key), nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxFillBody))
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		return readFill(resp.Body, key)
	case http.StatusNoContent:
		return nil, errFillMiss
	default:
		return nil, fmt.Errorf("cluster: peer %s fill: HTTP %d", p.id, resp.StatusCode)
	}
}

// forwardTargets resolves the forwarding ladder for key: owner then
// one fallback replica, remote and ring-live only. nil means serve
// locally (self-owned key, singleton ring, or leaving).
func (n *Node) forwardTargets(key string) []*peerState {
	if n.leaving.Load() {
		return nil
	}
	return n.fillTargets(key)
}

// RouteSynthesize routes one synthesis request by cache-key ownership.
// handled=false means the caller must serve the request locally: the
// key is self-owned, the ring is a singleton, the spec doesn't resolve
// (the local path will produce the same typed error), or every remote
// target failed — the local-degrade terminal of the ladder, counted in
// nanoxbar_cluster_local_degrades_total and never an untyped error.
func (n *Node) RouteSynthesize(ctx context.Context, req engine.Request) (res engine.Result, handled bool) {
	if req.Kind != engine.KindSynthesize {
		return engine.Result{}, false
	}
	key, err := n.eng.KeyFor(req)
	if err != nil {
		return engine.Result{}, false
	}
	targets := n.forwardTargets(key)
	if len(targets) == 0 {
		return engine.Result{}, false
	}
	for i, p := range targets {
		r, err := n.forwardTo(ctx, p, req)
		if err != nil {
			continue
		}
		n.forwards.Add(1)
		if i > 0 {
			n.failovers.Add(1)
		}
		return r, true
	}
	n.localDegrades.Add(1)
	n.logger.Warn("cluster forward degraded to local synthesis", "key", key[:min(16, len(key))])
	return engine.Result{}, false
}

// v1ErrorBody is the flat v1 error shape the remote node writes on
// failed results.
type v1ErrorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// forwardTo proxies req to one peer, guarded by its forward breaker.
// A 200 or a typed *domain* failure (bad_spec, infeasible, canceled)
// is a successful forward — the owner gave the same answer local
// serving would. Overload, unavailability, and transport errors are
// forward failures: the ladder moves on, and local synthesis is the
// backstop, so an overloaded owner never turns into a client-visible
// overload here.
func (n *Node) forwardTo(ctx context.Context, p *peerState, req engine.Request) (engine.Result, error) {
	if err := p.forward.Allow(); err != nil {
		return engine.Result{}, err
	}
	res, err := n.forwardOnce(ctx, p, req)
	p.forward.Report(err == nil)
	return res, err
}

func (n *Node) forwardOnce(ctx context.Context, p *peerState, req engine.Request) (engine.Result, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return engine.Result{}, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, p.url+"/v1/synthesize", bytes.NewReader(body))
	if err != nil {
		return engine.Result{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(ForwardedHeader, n.id)
	resp, err := n.hc.Do(hreq)
	if err != nil {
		return engine.Result{}, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxFillBody))
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusOK:
		var res engine.Result
		if err := json.NewDecoder(io.LimitReader(resp.Body, maxFillBody)).Decode(&res); err != nil {
			return engine.Result{}, fmt.Errorf("cluster: peer %s forward: %w", p.id, err)
		}
		return res, nil
	case resp.StatusCode == http.StatusUnprocessableEntity:
		// Typed domain failure: pass it through as the request's result.
		var eb v1ErrorBody
		if err := json.NewDecoder(io.LimitReader(resp.Body, maxFillBody)).Decode(&eb); err != nil || eb.Code == "" {
			return engine.Result{}, fmt.Errorf("cluster: peer %s forward: undecodable 422", p.id)
		}
		ferr := apierr.FromCode(eb.Code, eb.Error)
		return engine.Result{Kind: req.Kind, Error: eb.Error, Code: eb.Code, Err: ferr}, nil
	default:
		// Overloaded/draining/unknown peer: a forward failure, not a
		// client-visible error — the ladder falls over to the replica
		// and then to local synthesis.
		return engine.Result{}, fmt.Errorf("cluster: peer %s forward: HTTP %d", p.id, resp.StatusCode)
	}
}

// WarmStart bootstraps the local cache from the first peer that can
// ship a snapshot, instead of from disk. It returns the entry count
// and donor id. Transfer failures are all-or-nothing: a snapshot that
// dies mid-stream fails header-count validation inside
// cachestore.Read and seeds zero entries, so the node cold-starts
// typed rather than half-loaded.
func (n *Node) WarmStart(ctx context.Context) (entries int, from string, err error) {
	var lastErr error
	for _, m := range n.det.Members() {
		p, ok := n.peers[m.ID]
		if !ok {
			continue
		}
		count, err := n.snapshotFrom(ctx, p)
		if err != nil {
			lastErr = err
			n.logger.Warn("cluster warm-start donor failed", "peer", p.id, "err", err)
			continue
		}
		return count, p.id, nil
	}
	if lastErr == nil {
		lastErr = errors.New("cluster: no peers to warm-start from")
	}
	return 0, "", lastErr
}

// snapshotFrom streams one peer's cache snapshot into the local cache.
func (n *Node) snapshotFrom(ctx context.Context, p *peerState) (int, error) {
	sctx, cancel := context.WithTimeout(ctx, n.snapshotTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, p.url+SnapshotPath, nil)
	if err != nil {
		return 0, err
	}
	resp, err := n.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("cluster: peer %s snapshot: HTTP %d", p.id, resp.StatusCode)
	}
	return n.eng.ReadCacheSnapshot(resp.Body)
}
