// S4: snapshot-shipping truncation crashes. A warm-start transfer that
// dies mid-stream — at ANY byte offset — must leave the receiver cold
// and typed: zero entries seeded, an error returned, never a
// half-loaded cache.
package cluster_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"nanoxbar/internal/cluster"
	"nanoxbar/internal/engine"
)

// warmSnapshot builds an engine with a handful of synthesized entries
// and returns its serialized cache snapshot.
func warmSnapshot(t *testing.T) (int, []byte) {
	t.Helper()
	eng := engine.New(engine.Config{Workers: 2, CacheSize: 64})
	defer eng.Close()
	var reqs []engine.Request
	for i := 1; i <= 6; i++ {
		reqs = append(reqs, engine.Request{Kind: engine.KindSynthesize,
			Function: engine.FunctionSpec{TT: fmt.Sprintf("3:0x%02x", i)}})
	}
	for i, res := range eng.SubmitBatch(reqs) {
		if !res.Ok() {
			t.Fatalf("warm req %d: %v", i, res.Error)
		}
	}
	var buf bytes.Buffer
	n, err := eng.WriteCacheSnapshot(&buf)
	if err != nil || n != len(reqs) {
		t.Fatalf("WriteCacheSnapshot = %d, %v; want %d, nil", n, err, len(reqs))
	}
	return n, buf.Bytes()
}

// TestSnapshotTruncationEveryOffset replays the snapshot stream cut at
// every possible byte offset into a cold engine. Each prefix must be
// rejected wholesale; the full stream must load completely. One engine
// absorbs every attempt, which also proves failed loads don't
// accumulate partial state.
func TestSnapshotTruncationEveryOffset(t *testing.T) {
	entries, snap := warmSnapshot(t)

	cold := engine.New(engine.Config{Workers: 1, CacheSize: 64})
	defer cold.Close()
	for i := 0; i < len(snap); i++ {
		n, err := cold.ReadCacheSnapshot(bytes.NewReader(snap[:i]))
		if err == nil {
			t.Fatalf("offset %d/%d: truncated snapshot accepted", i, len(snap))
		}
		if n != 0 {
			t.Fatalf("offset %d/%d: seeded %d entries from truncated snapshot", i, len(snap), n)
		}
		if got := cold.Stats().CacheEntries; got != 0 {
			t.Fatalf("offset %d/%d: cache holds %d entries after rejected load", i, len(snap), got)
		}
	}

	n, err := cold.ReadCacheSnapshot(bytes.NewReader(snap))
	if err != nil || n != entries {
		t.Fatalf("full snapshot: ReadCacheSnapshot = %d, %v; want %d, nil", n, err, entries)
	}
}

// TestWarmStartTruncatedTransfer runs the same property over the wire:
// a donor whose snapshot stream aborts mid-transfer (connection torn
// down after half the bytes) must leave WarmStart failed and the
// receiver's cache empty.
func TestWarmStartTruncatedTransfer(t *testing.T) {
	_, snap := warmSnapshot(t)

	donor := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != cluster.SnapshotPath {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(snap[:len(snap)/2])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		// Tear the connection down without finishing the body: the
		// receiver sees an unexpected EOF mid-gzip-stream.
		panic(http.ErrAbortHandler)
	}))
	defer donor.Close()

	eng := engine.New(engine.Config{Workers: 1, CacheSize: 64})
	defer eng.Close()
	node, err := cluster.New(eng, cluster.Config{
		NodeID: "b", Peers: map[string]string{"donor": donor.URL},
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}

	n, from, err := node.WarmStart(context.Background())
	if err == nil {
		t.Fatalf("WarmStart accepted a truncated transfer: %d entries from %q", n, from)
	}
	if n != 0 {
		t.Fatalf("WarmStart seeded %d entries from truncated transfer", n)
	}
	if got := eng.Stats().CacheEntries; got != 0 {
		t.Fatalf("cache holds %d entries after failed warm-start", got)
	}
}
