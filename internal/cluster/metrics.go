package cluster

import (
	"sync/atomic"

	"nanoxbar/internal/telemetry"
)

// Cluster metric names. Exported through the engine's registry so they
// ride the existing /metrics exposition.
const (
	metricPeerFillHits   = "nanoxbar_cluster_peer_fill_hits_total"
	metricPeerFillMisses = "nanoxbar_cluster_peer_fill_misses_total"
	metricForwards       = "nanoxbar_cluster_forwards_total"
	metricFailovers      = "nanoxbar_cluster_failovers_total"
	metricLocalDegrades  = "nanoxbar_cluster_local_degrades_total"
	metricMembers        = "nanoxbar_cluster_members"
	metricRingMembers    = "nanoxbar_cluster_ring_members"
	metricLeaving        = "nanoxbar_cluster_leaving"
)

// registerMetrics publishes the cluster counters and membership gauges
// on reg (the engine's telemetry registry).
func (n *Node) registerMetrics(reg *telemetry.Registry) {
	counter := func(name, help string, v *atomic.Uint64) {
		reg.CounterFunc(name, help, func() float64 { return float64(v.Load()) })
	}
	counter(metricPeerFillHits, "Cold synthesis slots filled from a peer's cache.", &n.peerFillHits)
	counter(metricPeerFillMisses, "Peer cache-fill attempts that fell through to local synthesis.", &n.peerFillMisses)
	counter(metricForwards, "Synthesis requests forwarded to their ring owner (or its replica).", &n.forwards)
	counter(metricFailovers, "Forwards that had to fail over from the owner to a fallback replica.", &n.failovers)
	counter(metricLocalDegrades, "Non-owned requests served locally because every remote target failed.", &n.localDegrades)
	reg.Collect(metricMembers, "Tracked peers by failure-detector state.", "gauge",
		func(emit func(string, float64)) {
			alive, suspect, dead := n.det.Counts()
			emit(telemetry.Label("state", "alive"), float64(alive))
			emit(telemetry.Label("state", "suspect"), float64(suspect))
			emit(telemetry.Label("state", "dead"), float64(dead))
		})
	reg.GaugeFunc(metricRingMembers, "Distinct members on the current hash ring (including self).", func() float64 {
		if r := n.currentRing(); r != nil {
			return float64(r.Size())
		}
		return 0
	})
	reg.GaugeFunc(metricLeaving, "1 while this node is draining out of the ring.", func() float64 {
		if n.leaving.Load() {
			return 1
		}
		return 0
	})
}
