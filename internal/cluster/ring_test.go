package cluster

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("synth|v1|fn%04d|tech=nw|opts=default", i)
	}
	return out
}

// TestRingDeterministic: ownership is a pure function of the member
// set — identical rings built in different orders agree on every key.
func TestRingDeterministic(t *testing.T) {
	r1 := NewRing([]string{"a", "b", "c"}, 64)
	r2 := NewRing([]string{"c", "a", "b", "a"}, 64) // shuffled + dup
	for _, k := range keys(500) {
		o1, ok1 := r1.Owner(k)
		o2, ok2 := r2.Owner(k)
		if !ok1 || !ok2 || o1 != o2 {
			t.Fatalf("owner mismatch for %q: %q/%v vs %q/%v", k, o1, ok1, o2, ok2)
		}
	}
	if r1.Size() != 3 || r2.Size() != 3 {
		t.Fatalf("Size() = %d, %d; want 3 (dedup)", r1.Size(), r2.Size())
	}
}

// TestRingEmptyAndSingleton: the degenerate shapes every caller must
// survive — no members (no owner) and one member (it owns everything).
func TestRingEmptyAndSingleton(t *testing.T) {
	empty := NewRing(nil, 64)
	if _, ok := empty.Owner("k"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	if got := empty.Replicas("k", 2); got != nil {
		t.Fatalf("empty ring Replicas = %v, want nil", got)
	}

	solo := NewRing([]string{"a"}, 64)
	for _, k := range keys(50) {
		if o, ok := solo.Owner(k); !ok || o != "a" {
			t.Fatalf("singleton Owner(%q) = %q, %v", k, o, ok)
		}
	}
	if got := solo.Replicas("k", 3); len(got) != 1 || got[0] != "a" {
		t.Fatalf("singleton Replicas = %v, want [a]", got)
	}
}

// TestRingBalance: with 64 vnodes per member no node should own a
// wildly disproportionate share. The bound is loose (3× fair share) —
// the point is catching a broken hash or sort, not certifying variance.
func TestRingBalance(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"}, 64)
	counts := map[string]int{}
	ks := keys(3000)
	for _, k := range ks {
		o, _ := r.Owner(k)
		counts[o]++
	}
	fair := len(ks) / 3
	for id, c := range counts {
		if c == 0 {
			t.Fatalf("member %s owns nothing", id)
		}
		if c > 3*fair {
			t.Fatalf("member %s owns %d of %d keys (fair %d): badly unbalanced", id, c, len(ks), fair)
		}
	}
}

// TestRingReplicasDistinctOwnerFirst: Replicas returns distinct
// members with the owner in position zero — the forwarding ladder
// depends on both.
func TestRingReplicasDistinctOwnerFirst(t *testing.T) {
	r := NewRing([]string{"a", "b", "c", "d"}, 64)
	for _, k := range keys(200) {
		owner, _ := r.Owner(k)
		reps := r.Replicas(k, 3)
		if len(reps) != 3 {
			t.Fatalf("Replicas(%q, 3) len = %d", k, len(reps))
		}
		if reps[0] != owner {
			t.Fatalf("Replicas(%q)[0] = %q, owner = %q", k, reps[0], owner)
		}
		seen := map[string]bool{}
		for _, id := range reps {
			if seen[id] {
				t.Fatalf("Replicas(%q) has duplicate %q: %v", k, id, reps)
			}
			seen[id] = true
		}
	}
	// Asking for more replicas than members truncates to the member set.
	if got := r.Replicas("k", 10); len(got) != 4 {
		t.Fatalf("Replicas(k, 10) len = %d, want 4", len(got))
	}
}

// TestRingMinimalDisruption: removing one member of N must only move
// the keys that member owned — everything else keeps its owner. This
// is the property that makes peer cache-fill effective across
// membership churn.
func TestRingMinimalDisruption(t *testing.T) {
	full := NewRing([]string{"a", "b", "c", "d"}, 64)
	without := NewRing([]string{"a", "b", "d"}, 64)
	moved, owned := 0, 0
	for _, k := range keys(2000) {
		before, _ := full.Owner(k)
		after, _ := without.Owner(k)
		if before == "c" {
			owned++
			if after == "c" {
				t.Fatalf("removed member still owns %q", k)
			}
			continue
		}
		if before != after {
			moved++
		}
	}
	if owned == 0 {
		t.Fatal("test vacuous: removed member owned no keys")
	}
	if moved != 0 {
		t.Fatalf("%d keys not owned by the removed member changed owner", moved)
	}
}
