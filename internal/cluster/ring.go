package cluster

import (
	"sort"
	"strconv"
)

// defaultVnodes is the virtual-node count per member. 64 points per
// member keeps the max/min key-share ratio under ~1.4 for small
// clusters while a 3-node ring is still only 192 points — one binary
// search over a slice that fits in a cache line row.
const defaultVnodes = 64

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash uint64
	id   string
}

// Ring is an immutable consistent-hash ring over member ids. Keys are
// core.CacheKey strings; a key belongs to the member owning the first
// ring point at or clockwise of the key's hash. Immutability is the
// concurrency story: the router swaps whole rings under a lock and
// readers never see a partial rebuild.
type Ring struct {
	points  []ringPoint
	members []string // distinct ids, sorted
}

// fnv1a is FNV-1a over the whole string. The cache shards hash the
// same way (cache.go shardFor); reusing the function keeps the two
// placement layers consistent and dependency-free.
func fnv1a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// NewRing builds a ring over members with vnodes virtual nodes each
// (defaultVnodes when vnodes <= 0). A nil or empty member list yields
// an empty ring whose Owner always reports false.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	distinct := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, id := range members {
		if id == "" || seen[id] {
			continue
		}
		seen[id] = true
		distinct = append(distinct, id)
	}
	sort.Strings(distinct)
	r := &Ring{
		points:  make([]ringPoint, 0, len(distinct)*vnodes),
		members: distinct,
	}
	for _, id := range distinct {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: fnv1a(id + "#" + strconv.Itoa(v)), id: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// succ returns the index of the first point at or after h, wrapping.
func (r *Ring) succ(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Owner returns the member owning key, or false on an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	return r.points[r.succ(fnv1a(key))].id, true
}

// Replicas returns up to n distinct members for key in preference
// order: the owner first, then successive distinct successors on the
// circle. This is the failover order for fills and forwards.
func (r *Ring) Replicas(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	start := r.succ(fnv1a(key))
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		id := r.points[(start+i)%len(r.points)].id
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// Size returns the number of distinct members on the ring.
func (r *Ring) Size() int { return len(r.members) }

// Members returns the distinct member ids, sorted.
func (r *Ring) Members() []string { return r.members }
