package cluster

import (
	"sort"
	"sync"
	"time"

	"nanoxbar/internal/resilience"
)

// State is a peer's position in the failure-detector ladder. A peer
// walks alive → suspect → dead as successful heartbeats age out, and
// snaps back to alive on the next successful probe. Suspect peers stay
// in the ring (slow is not dead — demoting them early would reshuffle
// key ownership on every GC pause); only dead peers are removed.
type State int

const (
	StateAlive State = iota
	StateSuspect
	StateDead
)

func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	default:
		return "unknown"
	}
}

// memberRecord is one tracked peer.
type memberRecord struct {
	id     string
	url    string
	state  State
	lastOK time.Time
	// left pins the peer dead after it announced drain via its
	// /healthz cluster block, without waiting out DeadAfter. A later
	// successful probe (the process restarted) revives it.
	left bool
}

// Detector is the membership failure detector: pure state, driven
// entirely by Observe (probe outcomes) and Tick (suspicion-timeout
// walks) against the injected clock, so every transition sequence is
// reproducible under resilience.Fake. The HTTP prober that feeds it
// lives on Node.
type Detector struct {
	clock        resilience.Clock
	suspectAfter time.Duration
	deadAfter    time.Duration

	mu      sync.Mutex
	members map[string]*memberRecord
	// version increments on every state change; the router rebuilds
	// its ring only when it moves.
	version uint64

	onTransition func(id string, from, to State)
}

func newDetector(clock resilience.Clock, suspectAfter, deadAfter time.Duration, onTransition func(id string, from, to State)) *Detector {
	return &Detector{
		clock:        clock,
		suspectAfter: suspectAfter,
		deadAfter:    deadAfter,
		members:      make(map[string]*memberRecord),
		onTransition: onTransition,
	}
}

// add registers a peer, optimistically alive: a booting cluster routes
// immediately, and a peer that is actually down ages into suspect/dead
// within DeadAfter without ever having answered a probe.
func (d *Detector) add(id, url string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.members[id]; ok {
		return
	}
	d.members[id] = &memberRecord{id: id, url: url, state: StateAlive, lastOK: d.clock.Now()}
}

func (d *Detector) transition(m *memberRecord, to State) {
	from := m.state
	if from == to {
		return
	}
	m.state = to
	d.version++
	if d.onTransition != nil {
		d.onTransition(m.id, from, to)
	}
}

// Observe records one probe outcome. Success refreshes the suspicion
// deadline and revives the peer (dead → alive is how a restarted node
// rejoins the ring); failure records nothing — demotion is purely
// timeout-driven via Tick, so one dropped packet between healthy probes
// never flaps membership.
func (d *Detector) Observe(id string, ok bool) {
	if !ok {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	m, found := d.members[id]
	if !found {
		return
	}
	m.lastOK = d.clock.Now()
	m.left = false
	d.transition(m, StateAlive)
}

// MarkLeft pins a peer dead immediately: it told us it is draining, so
// waiting out the suspicion timeout would only route requests at a
// server that rejects them.
func (d *Detector) MarkLeft(id string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if m, ok := d.members[id]; ok {
		m.left = true
		d.transition(m, StateDead)
	}
}

// Tick ages every member against the suspicion timeouts: no successful
// probe for SuspectAfter demotes to suspect, for DeadAfter to dead.
// Tick only demotes; revival is Observe's job.
func (d *Detector) Tick() {
	now := d.clock.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, m := range d.members {
		if m.left {
			continue // pinned dead until it probes OK again
		}
		switch elapsed := now.Sub(m.lastOK); {
		case elapsed >= d.deadAfter:
			d.transition(m, StateDead)
		case elapsed >= d.suspectAfter && m.state == StateAlive:
			d.transition(m, StateSuspect)
		}
	}
}

// Version returns the membership change counter.
func (d *Detector) Version() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.version
}

// Ringable returns the sorted ids of members that belong in the hash
// ring: everyone not dead. Suspect members keep their keys — see State.
func (d *Detector) Ringable() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	ids := make([]string, 0, len(d.members))
	for id, m := range d.members {
		if m.state != StateDead {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// StateOf returns a member's current state.
func (d *Detector) StateOf(id string) (State, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, ok := d.members[id]
	if !ok {
		return StateDead, false
	}
	return m.state, true
}

// Counts returns the number of members per state.
func (d *Detector) Counts() (alive, suspect, dead int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, m := range d.members {
		switch m.state {
		case StateAlive:
			alive++
		case StateSuspect:
			suspect++
		case StateDead:
			dead++
		}
	}
	return
}

// MemberStatus is one peer's externally visible membership row.
type MemberStatus struct {
	ID    string `json:"id"`
	URL   string `json:"url"`
	State string `json:"state"`
}

// Members returns every tracked peer sorted by id.
func (d *Detector) Members() []MemberStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]MemberStatus, 0, len(d.members))
	for _, m := range d.members {
		out = append(out, MemberStatus{ID: m.id, URL: m.url, State: m.state.String()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
