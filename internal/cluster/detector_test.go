package cluster

import (
	"reflect"
	"testing"
	"time"

	"nanoxbar/internal/resilience"
)

// transitionLog records detector callbacks for exact-sequence pinning.
type transitionLog struct {
	events []string
}

func (l *transitionLog) record(id string, from, to State) {
	l.events = append(l.events, id+":"+from.String()+"->"+to.String())
}

// TestDetectorLifecycle pins the full alive → suspect → dead → alive
// arc on a deterministic fake clock: demotions are purely
// timeout-driven (failed probes do nothing on their own), and a single
// successful probe revives a dead member.
func TestDetectorLifecycle(t *testing.T) {
	start := time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC)
	clock := resilience.NewFake(start)
	log := &transitionLog{}
	d := newDetector(clock, 3*time.Second, 6*time.Second, log.record)
	d.add("b", "http://b")

	if st, ok := d.StateOf("b"); !ok || st != StateAlive {
		t.Fatalf("StateOf(b) = %v, %v; want alive, true", st, ok)
	}

	// Failed probes alone never demote: suspicion is elapsed-time-based
	// so one slow probe round does not flap the ring.
	d.Observe("b", false)
	d.Tick()
	if st, _ := d.StateOf("b"); st != StateAlive {
		t.Fatalf("after failed probe within timeout: state = %v, want alive", st)
	}

	// Just under the suspect window: still alive.
	clock.Advance(3*time.Second - time.Millisecond)
	d.Tick()
	if st, _ := d.StateOf("b"); st != StateAlive {
		t.Fatalf("at suspectAfter-1ms: state = %v, want alive", st)
	}

	// Crossing suspectAfter demotes to suspect — but the member stays
	// ringable: only dead members leave the ring.
	clock.Advance(time.Millisecond)
	d.Tick()
	if st, _ := d.StateOf("b"); st != StateSuspect {
		t.Fatalf("at suspectAfter: state = %v, want suspect", st)
	}
	if got := d.Ringable(); !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("suspect member dropped from ring: Ringable() = %v", got)
	}

	// Crossing deadAfter demotes to dead and removes it from the ring.
	clock.Advance(3 * time.Second)
	d.Tick()
	if st, _ := d.StateOf("b"); st != StateDead {
		t.Fatalf("at deadAfter: state = %v, want dead", st)
	}
	if got := d.Ringable(); len(got) != 0 {
		t.Fatalf("dead member still ringable: %v", got)
	}

	// One successful probe revives it straight to alive.
	d.Observe("b", true)
	if st, _ := d.StateOf("b"); st != StateAlive {
		t.Fatalf("after successful probe: state = %v, want alive", st)
	}
	if got := d.Ringable(); !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("revived member not ringable: %v", got)
	}

	want := []string{
		"b:alive->suspect",
		"b:suspect->dead",
		"b:dead->alive",
	}
	if !reflect.DeepEqual(log.events, want) {
		t.Fatalf("transition sequence = %v, want %v", log.events, want)
	}
}

// TestDetectorObserveRefreshesDeadline checks that successful probes
// keep pushing the suspicion window forward.
func TestDetectorObserveRefreshesDeadline(t *testing.T) {
	clock := resilience.NewFake(time.Unix(0, 0))
	d := newDetector(clock, 3*time.Second, 6*time.Second, nil)
	d.add("b", "http://b")

	for i := 0; i < 10; i++ {
		clock.Advance(2 * time.Second) // under suspectAfter each step
		d.Observe("b", true)
		d.Tick()
		if st, _ := d.StateOf("b"); st != StateAlive {
			t.Fatalf("step %d: state = %v, want alive", i, st)
		}
	}
}

// TestDetectorMarkLeft pins the drain path: a peer announcing
// leaving=true goes dead immediately — no suspicion window — and stays
// dead across ticks, but a genuinely restarted process (successful
// probe) still revives it.
func TestDetectorMarkLeft(t *testing.T) {
	clock := resilience.NewFake(time.Unix(0, 0))
	log := &transitionLog{}
	d := newDetector(clock, 3*time.Second, 6*time.Second, log.record)
	d.add("b", "http://b")

	v0 := d.Version()
	d.MarkLeft("b")
	if st, _ := d.StateOf("b"); st != StateDead {
		t.Fatalf("after MarkLeft: state = %v, want dead", st)
	}
	if d.Version() == v0 {
		t.Fatal("MarkLeft did not bump the ring version")
	}

	// Ticks do not resurrect a departed member even though lastOK is
	// recent.
	clock.Advance(time.Millisecond)
	d.Tick()
	if st, _ := d.StateOf("b"); st != StateDead {
		t.Fatalf("after Tick: state = %v, want dead (left pin)", st)
	}

	// A successful probe means the process came back: revive.
	d.Observe("b", true)
	if st, _ := d.StateOf("b"); st != StateAlive {
		t.Fatalf("after revival probe: state = %v, want alive", st)
	}
	clock.Advance(time.Millisecond)
	d.Tick()
	if st, _ := d.StateOf("b"); st != StateAlive {
		t.Fatalf("revived member demoted by next tick: state = %v", st)
	}
}

// TestDetectorCountsAndMembers covers the aggregate views the metrics
// and /stats surfaces read.
func TestDetectorCountsAndMembers(t *testing.T) {
	clock := resilience.NewFake(time.Unix(0, 0))
	d := newDetector(clock, 3*time.Second, 6*time.Second, nil)
	d.add("c", "http://c")
	d.add("a", "http://a")
	d.add("b", "http://b")

	// Age a past suspect, b past dead; keep c fresh.
	clock.Advance(4 * time.Second)
	d.Observe("c", true)
	d.Tick() // a, b suspect
	clock.Advance(3 * time.Second)
	d.Observe("a", true) // a back alive...
	clock.Advance(time.Second)
	d.Tick() // ...then suspect is not yet reached for a; b dead; c suspect? No: c lastOK 4s ago
	// At this point: a lastOK 1s ago (alive), b lastOK 8s ago (dead),
	// c lastOK 4s ago (suspect).
	alive, suspect, dead := d.Counts()
	if alive != 1 || suspect != 1 || dead != 1 {
		t.Fatalf("Counts() = %d/%d/%d, want 1/1/1", alive, suspect, dead)
	}

	ms := d.Members()
	if len(ms) != 3 {
		t.Fatalf("Members() len = %d, want 3", len(ms))
	}
	// Sorted by id, states as derived above.
	wantStates := map[string]string{"a": "alive", "b": "dead", "c": "suspect"}
	for i, m := range ms {
		if i > 0 && ms[i-1].ID >= m.ID {
			t.Fatalf("Members() not sorted: %v", ms)
		}
		if m.State != wantStates[m.ID] {
			t.Fatalf("member %s state = %q, want %q", m.ID, m.State, wantStates[m.ID])
		}
	}

	if got := d.Ringable(); !reflect.DeepEqual(got, []string{"a", "c"}) {
		t.Fatalf("Ringable() = %v, want [a c]", got)
	}
}

// TestDetectorVersionGatesRebuilds: the version only moves on state
// transitions, so ring rebuilds are cheap no-ops on quiet ticks.
func TestDetectorVersionGatesRebuilds(t *testing.T) {
	clock := resilience.NewFake(time.Unix(0, 0))
	d := newDetector(clock, 3*time.Second, 6*time.Second, nil)
	d.add("b", "http://b")
	v := d.Version()
	for i := 0; i < 5; i++ {
		clock.Advance(time.Second)
		d.Observe("b", true)
		d.Tick()
	}
	if d.Version() != v {
		t.Fatalf("version moved on steady-state ticks: %d -> %d", v, d.Version())
	}
	clock.Advance(10 * time.Second)
	d.Tick()
	if d.Version() == v {
		t.Fatal("version did not move on a state transition")
	}
}
