// Integration tests for the cluster tier, wired over real loopback
// HTTP through internal/httpapi. External test package: cluster must
// not import httpapi (the dependency runs the other way), but the
// tests need both.
package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"nanoxbar/internal/cluster"
	"nanoxbar/internal/engine"
	"nanoxbar/internal/httpapi"
)

// swapHandler lets the httptest server start (fixing its URL) before
// the node that serves on it exists — membership URLs are needed to
// construct the nodes.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

func (s *swapHandler) set(h http.Handler) { s.mu.Lock(); s.h = h; s.mu.Unlock() }

type testNode struct {
	id   string
	eng  *engine.Engine
	node *cluster.Node
	srv  *httptest.Server
}

// startCluster boots one in-process node per id, each a full
// engine + cluster.Node + httpapi server on a loopback listener, all
// sharing one membership map. stubs maps ids to raw handlers standing
// in for a member (no engine behind them).
func startCluster(t *testing.T, ids []string, stubs map[string]http.Handler) map[string]*testNode {
	t.Helper()
	urls := map[string]string{}
	swaps := map[string]*swapHandler{}
	srvs := map[string]*httptest.Server{}
	for _, id := range ids {
		sh := &swapHandler{}
		srv := httptest.NewServer(sh)
		t.Cleanup(srv.Close)
		swaps[id], srvs[id], urls[id] = sh, srv, srv.URL
	}
	nodes := map[string]*testNode{}
	for _, id := range ids {
		if h, ok := stubs[id]; ok {
			swaps[id].set(h)
			continue
		}
		eng := engine.New(engine.Config{Workers: 2, CacheSize: 256})
		t.Cleanup(eng.Close)
		node, err := cluster.New(eng, cluster.Config{
			NodeID: id, Advertise: urls[id], Peers: urls,
		})
		if err != nil {
			t.Fatalf("cluster.New(%s): %v", id, err)
		}
		eng.SetPeerFill(node.PeerFill)
		swaps[id].set(httpapi.New(eng, httpapi.WithCluster(node)))
		nodes[id] = &testNode{id: id, eng: eng, node: node, srv: srvs[id]}
	}
	return nodes
}

// requestOwnedBy scans small truth-table functions for one whose cache
// key the ring assigns to owner, so tests can aim requests at a
// specific member deterministically.
func requestOwnedBy(t *testing.T, eng *engine.Engine, members []string, owner string) (engine.Request, string) {
	t.Helper()
	ring := cluster.NewRing(members, 0)
	for v := 1; v < 255; v++ {
		req := engine.Request{Kind: engine.KindSynthesize,
			Function: engine.FunctionSpec{TT: fmt.Sprintf("3:0x%02x", v)}}
		key, err := eng.KeyFor(req)
		if err != nil {
			t.Fatalf("KeyFor: %v", err)
		}
		if o, _ := ring.Owner(key); o == owner {
			return req, key
		}
	}
	t.Fatalf("no 3-var function key owned by %s", owner)
	return engine.Request{}, ""
}

func postSynthesize(t *testing.T, url string, req engine.Request) (*http.Response, engine.Result) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url+"/v1/synthesize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/synthesize: %v", err)
	}
	defer resp.Body.Close()
	var res engine.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	return resp, res
}

// TestPeerFillHit: a cold node whose key is owned by a warm sibling
// fills from that sibling's cache instead of synthesizing.
func TestPeerFillHit(t *testing.T) {
	nodes := startCluster(t, []string{"a", "b"}, nil)
	req, _ := requestOwnedBy(t, nodes["a"].eng, []string{"a", "b"}, "b")

	if res := nodes["b"].eng.Do(req); !res.Ok() {
		t.Fatalf("warm b: %v", res.Error)
	}
	synthB := nodes["b"].eng.Stats().SynthCalls

	if res := nodes["a"].eng.Do(req); !res.Ok() {
		t.Fatalf("a.Do: %v", res.Error)
	}
	st := nodes["a"].node.Status()
	if st.PeerFillHits != 1 || st.PeerFillMisses != 0 {
		t.Fatalf("a fill hits/misses = %d/%d, want 1/0", st.PeerFillHits, st.PeerFillMisses)
	}
	if got := nodes["a"].eng.Stats().SynthCalls; got != 0 {
		t.Fatalf("a synthesized %d times despite peer fill", got)
	}
	if got := nodes["b"].eng.Stats().SynthCalls; got != synthB {
		t.Fatalf("fill triggered synthesis on b: %d -> %d", synthB, got)
	}
	// The filled entry is cached: a second local call is a plain hit,
	// no second fill round-trip.
	nodes["a"].eng.Do(req)
	if st := nodes["a"].node.Status(); st.PeerFillHits != 1 {
		t.Fatalf("second call re-filled: hits = %d", st.PeerFillHits)
	}
}

// TestPeerFillMiss: a cold owner answers 204, and the asker falls
// through to local synthesis — a miss can only make the cold path
// slower, never fail it.
func TestPeerFillMiss(t *testing.T) {
	nodes := startCluster(t, []string{"a", "b"}, nil)
	req, _ := requestOwnedBy(t, nodes["a"].eng, []string{"a", "b"}, "b")

	if res := nodes["a"].eng.Do(req); !res.Ok() {
		t.Fatalf("a.Do: %v", res.Error)
	}
	st := nodes["a"].node.Status()
	if st.PeerFillMisses != 1 || st.PeerFillHits != 0 {
		t.Fatalf("a fill hits/misses = %d/%d, want 0/1", st.PeerFillHits, st.PeerFillMisses)
	}
	if got := nodes["a"].eng.Stats().SynthCalls; got != 1 {
		t.Fatalf("a SynthCalls = %d, want 1 (local fallback)", got)
	}
}

// TestForwardToOwner: a synthesis POSTed to a non-owner is proxied to
// the owner, which computes it; the receiving node does no local work.
func TestForwardToOwner(t *testing.T) {
	nodes := startCluster(t, []string{"a", "b"}, nil)
	req, _ := requestOwnedBy(t, nodes["a"].eng, []string{"a", "b"}, "b")

	resp, res := postSynthesize(t, nodes["a"].srv.URL, req)
	if resp.StatusCode != http.StatusOK || !res.Ok() || res.Synthesis == nil {
		t.Fatalf("forwarded request: HTTP %d, err %q", resp.StatusCode, res.Error)
	}
	if st := nodes["a"].node.Status(); st.Forwards != 1 || st.Failovers != 0 {
		t.Fatalf("a forwards/failovers = %d/%d, want 1/0", st.Forwards, st.Failovers)
	}
	if got := nodes["a"].eng.Stats().SynthCalls; got != 0 {
		t.Fatalf("a synthesized a forwarded request: SynthCalls = %d", got)
	}
	if got := nodes["b"].eng.Stats().SynthCalls; got != 1 {
		t.Fatalf("b SynthCalls = %d, want 1", got)
	}
}

// TestForwardFailover: with the owner down (and not yet detected), the
// ladder falls over to the fallback replica, which serves the request
// locally under the forwarded marker.
func TestForwardFailover(t *testing.T) {
	nodes := startCluster(t, []string{"a", "b", "c"}, nil)
	req, _ := requestOwnedBy(t, nodes["a"].eng, []string{"a", "b", "c"}, "b")

	nodes["b"].srv.Close() // abrupt kill; a's detector still believes b alive

	resp, res := postSynthesize(t, nodes["a"].srv.URL, req)
	if resp.StatusCode != http.StatusOK || !res.Ok() {
		t.Fatalf("failover request: HTTP %d, err %q", resp.StatusCode, res.Error)
	}
	st := nodes["a"].node.Status()
	if st.Failovers != 1 {
		t.Fatalf("a failovers = %d, want 1", st.Failovers)
	}
	// Exactly one of {a local, c} computed it — never b, never both.
	synthA := nodes["a"].eng.Stats().SynthCalls
	synthC := nodes["c"].eng.Stats().SynthCalls
	if synthA+synthC != 1 {
		t.Fatalf("synth calls a=%d c=%d, want exactly one total", synthA, synthC)
	}
}

// TestLocalDegrade: every remote target dead means the node serves the
// request itself — a typed, successful, counted degrade; the client
// never sees a transport error.
func TestLocalDegrade(t *testing.T) {
	nodes := startCluster(t, []string{"a", "b"}, nil)
	req, _ := requestOwnedBy(t, nodes["a"].eng, []string{"a", "b"}, "b")

	nodes["b"].srv.Close()

	resp, res := postSynthesize(t, nodes["a"].srv.URL, req)
	if resp.StatusCode != http.StatusOK || !res.Ok() || res.Synthesis == nil {
		t.Fatalf("degraded request: HTTP %d, err %q", resp.StatusCode, res.Error)
	}
	st := nodes["a"].node.Status()
	if st.LocalDegrades != 1 || st.Forwards != 0 {
		t.Fatalf("a degrades/forwards = %d/%d, want 1/0", st.LocalDegrades, st.Forwards)
	}
	// PeerFill also fails against the dead owner, so local synthesis ran.
	if got := nodes["a"].eng.Stats().SynthCalls; got != 1 {
		t.Fatalf("a SynthCalls = %d, want 1", got)
	}
}

// TestForwardDomainErrorPassesThrough: a 422 from the owner is the
// answer, not a failure — it must come back typed with the owner's
// code, without tripping the failover ladder.
func TestForwardDomainErrorPassesThrough(t *testing.T) {
	stub := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/synthesize" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnprocessableEntity)
		json.NewEncoder(w).Encode(map[string]string{
			"error": "core: no feasible implementation", "code": "infeasible",
		})
	})
	nodes := startCluster(t, []string{"a", "z"}, map[string]http.Handler{"z": stub})
	req, _ := requestOwnedBy(t, nodes["a"].eng, []string{"a", "z"}, "z")

	resp, res := postSynthesize(t, nodes["a"].srv.URL, req)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", resp.StatusCode)
	}
	if res.Code != "infeasible" {
		t.Fatalf("code = %q, want infeasible", res.Code)
	}
	st := nodes["a"].node.Status()
	if st.Forwards != 1 || st.Failovers != 0 || st.LocalDegrades != 0 {
		t.Fatalf("forwards/failovers/degrades = %d/%d/%d, want 1/0/0",
			st.Forwards, st.Failovers, st.LocalDegrades)
	}
	if got := nodes["a"].eng.Stats().SynthCalls; got != 0 {
		t.Fatalf("domain error retried locally: SynthCalls = %d", got)
	}
}

// TestLeavingStopsRouting: a draining node serves everything locally —
// no forwards, no fills — so the drain window never depends on peers.
func TestLeavingStopsRouting(t *testing.T) {
	nodes := startCluster(t, []string{"a", "b"}, nil)
	req, _ := requestOwnedBy(t, nodes["a"].eng, []string{"a", "b"}, "b")

	nodes["a"].node.Leave()
	if res, handled := nodes["a"].node.RouteSynthesize(context.Background(), req); handled {
		t.Fatalf("leaving node still forwarded: %+v", res)
	}
	if imp := nodes["a"].node.PeerFill(context.Background(), "any-key"); imp != nil {
		t.Fatal("leaving node still peer-filled")
	}
	st := nodes["a"].node.Status()
	if !st.Leaving || st.Forwards != 0 || st.PeerFillHits != 0 || st.PeerFillMisses != 0 {
		t.Fatalf("leaving status = %+v", st)
	}
}

// TestWarmStartFromPeer is the restart acceptance path: a node with no
// local snapshot file streams a sibling's cache and then answers the
// sibling's whole workload from cache — zero synthesis calls, 100%
// hit-rate (the criterion asks ≥90%).
func TestWarmStartFromPeer(t *testing.T) {
	nodes := startCluster(t, []string{"a", "b"}, nil)

	const batch = 20
	reqs := make([]engine.Request, batch)
	for i := range reqs {
		reqs[i] = engine.Request{Kind: engine.KindSynthesize,
			Function: engine.FunctionSpec{TT: fmt.Sprintf("3:0x%02x", i+1)}}
	}
	for i, res := range nodes["a"].eng.SubmitBatch(reqs) {
		if !res.Ok() {
			t.Fatalf("warm a req %d: %v", i, res.Error)
		}
	}
	wantEntries := nodes["a"].eng.Stats().CacheEntries
	if wantEntries == 0 {
		t.Fatal("test vacuous: a cached nothing")
	}

	n, from, err := nodes["b"].node.WarmStart(context.Background())
	if err != nil {
		t.Fatalf("WarmStart: %v", err)
	}
	if from != "a" || n != wantEntries {
		t.Fatalf("WarmStart = %d entries from %q, want %d from a", n, from, wantEntries)
	}

	for i, res := range nodes["b"].eng.SubmitBatch(reqs) {
		if !res.Ok() {
			t.Fatalf("replay req %d on b: %v", i, res.Error)
		}
	}
	st := nodes["b"].eng.Stats()
	if st.SynthCalls != 0 {
		t.Fatalf("warm-started b synthesized %d times, want 0", st.SynthCalls)
	}
	if st.CacheHits < batch {
		t.Fatalf("warm-started b cache hits = %d, want ≥ %d (≥90%% criterion)", st.CacheHits, batch)
	}
}

// TestHealthzCarriesClusterBlock: the heartbeat payload peers probe is
// /healthz; its cluster block must carry the node id and the leaving
// flag the drain path flips.
func TestHealthzCarriesClusterBlock(t *testing.T) {
	nodes := startCluster(t, []string{"a", "b"}, nil)
	var health struct {
		Cluster *cluster.Status `json:"cluster"`
	}
	get := func() {
		t.Helper()
		resp, err := http.Get(nodes["a"].srv.URL + "/healthz")
		if err != nil {
			t.Fatalf("GET /healthz: %v", err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
			t.Fatalf("decode healthz: %v", err)
		}
	}
	get()
	if health.Cluster == nil || health.Cluster.NodeID != "a" || health.Cluster.Leaving {
		t.Fatalf("healthz cluster block = %+v", health.Cluster)
	}
	if health.Cluster.RingMembers != 2 {
		t.Fatalf("ring members = %d, want 2", health.Cluster.RingMembers)
	}
	nodes["a"].node.Leave()
	get()
	if !health.Cluster.Leaving {
		t.Fatal("leaving=true not surfaced on /healthz after Leave")
	}
}
