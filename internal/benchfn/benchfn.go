// Package benchfn provides the benchmark Boolean functions driving the
// paper-reproduction experiments: generatable classics from the
// MCNC/espresso tradition (symmetric counters rd53/rd73, 9sym, parity,
// majority, multiplexers, adder and comparator slices) plus seeded
// random and seeded D-reducible families. Everything is constructed
// from definitions — no benchmark files needed (see DESIGN.md for the
// substitution rationale).
package benchfn

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sync"

	"nanoxbar/internal/dreduce"
	"nanoxbar/internal/truthtab"
)

// Spec names one benchmark function.
type Spec struct {
	Name        string
	Description string
	F           truthtab.TT
}

// N returns the variable count.
func (s Spec) N() int { return s.F.NumVars() }

// Majority returns the n-input majority function (n odd).
func Majority(n int) Spec {
	if n%2 == 0 {
		panic("benchfn: majority needs odd n")
	}
	f := truthtab.FromFunc(n, func(a uint64) bool {
		return bits.OnesCount64(a) > n/2
	})
	return Spec{Name: fmt.Sprintf("maj%d", n), Description: fmt.Sprintf("%d-input majority", n), F: f}
}

// Parity returns the n-input odd-parity function (XOR chain) — the
// classic worst case for SOP-constrained technologies.
func Parity(n int) Spec {
	f := truthtab.FromFunc(n, func(a uint64) bool {
		return bits.OnesCount64(a)%2 == 1
	})
	return Spec{Name: fmt.Sprintf("xor%d", n), Description: fmt.Sprintf("%d-input odd parity", n), F: f}
}

// Threshold returns [Σ inputs ≥ t].
func Threshold(n, t int) Spec {
	f := truthtab.FromFunc(n, func(a uint64) bool {
		return bits.OnesCount64(a) >= t
	})
	return Spec{Name: fmt.Sprintf("th%d_%d", n, t), Description: fmt.Sprintf("%d-of-%d threshold", t, n), F: f}
}

// Mux returns the 2^k:1 multiplexer with k select inputs (variables
// 0..k-1) and 2^k data inputs.
func Mux(k int) Spec {
	n := k + 1<<uint(k)
	f := truthtab.FromFunc(n, func(a uint64) bool {
		sel := a & (1<<uint(k) - 1)
		return a>>(uint(k)+uint(sel))&1 == 1
	})
	return Spec{Name: fmt.Sprintf("mux%d", 1<<uint(k)), Description: fmt.Sprintf("%d:1 multiplexer", 1<<uint(k)), F: f}
}

// Rd returns output bit b of the "rdXY"-style symmetric adder (rd53,
// rd73, …): the function counting the number of ones among n inputs and
// emitting bit b of the count.
func Rd(n, b int) Spec {
	f := truthtab.FromFunc(n, func(a uint64) bool {
		return bits.OnesCount64(a)>>uint(b)&1 == 1
	})
	return Spec{Name: fmt.Sprintf("rd%d_s%d", n, b), Description: fmt.Sprintf("bit %d of the %d-input ones-count", b, n), F: f}
}

// NineSym returns the classic 9sym benchmark: 1 iff the number of ones
// among 9 inputs lies in 3..6.
func NineSym() Spec {
	f := truthtab.FromFunc(9, func(a uint64) bool {
		c := bits.OnesCount64(a)
		return c >= 3 && c <= 6
	})
	return Spec{Name: "9sym", Description: "9-input symmetric, ones-count in 3..6", F: f}
}

// SymRange generalizes 9sym: ones-count within [lo, hi] among n inputs.
func SymRange(n, lo, hi int) Spec {
	f := truthtab.FromFunc(n, func(a uint64) bool {
		c := bits.OnesCount64(a)
		return c >= lo && c <= hi
	})
	return Spec{Name: fmt.Sprintf("sym%d_%d_%d", n, lo, hi),
		Description: fmt.Sprintf("%d-input symmetric, count in %d..%d", n, lo, hi), F: f}
}

// AdderBit returns output bit b (0-indexed; b == n is the carry) of an
// n-bit + n-bit adder over 2n inputs (a in low vars, b in high vars).
func AdderBit(n, b int) Spec {
	f := truthtab.FromFunc(2*n, func(x uint64) bool {
		a := x & (1<<uint(n) - 1)
		bb := x >> uint(n)
		return (a+bb)>>uint(b)&1 == 1
	})
	return Spec{Name: fmt.Sprintf("add%d_s%d", n, b), Description: fmt.Sprintf("bit %d of %d-bit addition", b, n), F: f}
}

// ComparatorGT returns [a > b] over 2n inputs.
func ComparatorGT(n int) Spec {
	f := truthtab.FromFunc(2*n, func(x uint64) bool {
		a := x & (1<<uint(n) - 1)
		bb := x >> uint(n)
		return a > bb
	})
	return Spec{Name: fmt.Sprintf("cmp%d", n), Description: fmt.Sprintf("%d-bit a>b comparator", n), F: f}
}

// RandomDensity returns a seeded random function with the given on-set
// density.
func RandomDensity(n int, density float64, seed int64) Spec {
	rng := rand.New(rand.NewSource(seed))
	f := truthtab.FromFunc(n, func(a uint64) bool {
		return rng.Float64() < density
	})
	return Spec{Name: fmt.Sprintf("rnd%d_d%02d_s%d", n, int(density*100), seed),
		Description: fmt.Sprintf("random %d-var function, density %.2f, seed %d", n, density, seed), F: f}
}

// DReducible returns a seeded random D-reducible function (affine hull
// of the stated codimension).
func DReducible(n, codim int, seed int64) Spec {
	rng := rand.New(rand.NewSource(seed))
	f, _ := dreduce.RandomDReducible(n, codim, 0.5, rng)
	return Spec{Name: fmt.Sprintf("dred%d_c%d_s%d", n, codim, seed),
		Description: fmt.Sprintf("random D-reducible, n=%d codim=%d seed=%d", n, codim, seed), F: f}
}

// PaperExample is the §III running example f = x1x2 + x1'x2'.
func PaperExample() Spec {
	return Spec{Name: "xnor2", Description: "paper running example x1x2 + x1'x2'",
		F: truthtab.FromMinterms(2, []uint64{0, 3})}
}

// Fig4 is the paper's Fig. 4 lattice function.
func Fig4() Spec {
	f := truthtab.FromFunc(6, func(a uint64) bool {
		x := func(i int) bool { return a>>uint(i-1)&1 == 1 }
		return x(1) && x(2) && x(3) ||
			x(1) && x(2) && x(5) && x(6) ||
			x(2) && x(3) && x(4) && x(5) ||
			x(4) && x(5) && x(6)
	})
	return Spec{Name: "fig4", Description: "Fig.4 lattice function", F: f}
}

// Suite returns the standard benchmark set used by the experiments:
// small enough for exact minimization, spanning symmetric, arithmetic,
// control, and random function shapes.
func Suite() []Spec {
	return []Spec{
		PaperExample(),
		Fig4(),
		Majority(3),
		Majority(5),
		Majority(7),
		Parity(4),
		Parity(5),
		Threshold(6, 2),
		Mux(1),
		Mux(2),
		Rd(5, 0),
		Rd(5, 1),
		Rd(5, 2),
		NineSym(),
		AdderBit(2, 0),
		AdderBit(2, 1),
		AdderBit(2, 2),
		ComparatorGT(2),
		ComparatorGT(3),
		RandomDensity(5, 0.3, 1),
		RandomDensity(6, 0.5, 2),
		RandomDensity(7, 0.2, 3),
		DReducible(6, 1, 4),
		DReducible(7, 2, 5),
	}
}

// byName indexes the suite once: constructing it materializes every
// truth table (the random and D-reducible families are not cheap), far
// too much work to redo on each engine request resolution. The shared
// specs are treated as read-only by all callers.
var byName = sync.OnceValue(func() map[string]Spec {
	suite := Suite()
	m := make(map[string]Spec, len(suite))
	for _, s := range suite {
		m[s.Name] = s
	}
	return m
})

// ByName returns the suite function with the given name.
func ByName(name string) (Spec, bool) {
	s, ok := byName()[name]
	return s, ok
}
