package benchfn

import (
	"testing"

	"nanoxbar/internal/truthtab"
)

func TestSuiteWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Suite() {
		if s.Name == "" || s.Description == "" {
			t.Fatalf("unnamed spec %+v", s)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate name %s", s.Name)
		}
		seen[s.Name] = true
		if s.N() < 1 || s.N() > 12 {
			t.Fatalf("%s: %d vars outside bench range", s.Name, s.N())
		}
		if s.F.IsZero() || s.F.IsOne() {
			t.Fatalf("%s is constant", s.Name)
		}
	}
	if len(seen) < 20 {
		t.Fatalf("suite too small: %d", len(seen))
	}
}

func TestMajority(t *testing.T) {
	m := Majority(5)
	if !m.F.Bit(0b11100) || m.F.Bit(0b00011) {
		t.Fatal("maj5 wrong")
	}
	if !m.F.IsSelfDual() {
		t.Fatal("majority must be self-dual")
	}
}

func TestParityCount(t *testing.T) {
	p := Parity(4)
	if p.F.CountOnes() != 8 {
		t.Fatal("xor4 on-set")
	}
}

func TestMux(t *testing.T) {
	m := Mux(2) // 4:1 mux, 6 vars: sel=vars 0,1; data=vars 2..5
	// sel=2 (binary 10): selects data input 2 → variable 4.
	a := uint64(0b010000) | 0b10 // data bit 4 set, sel = 2
	if !m.F.Bit(a) {
		t.Fatal("mux select path wrong")
	}
	if m.F.Bit(0b10) {
		t.Fatal("mux with zero data high")
	}
}

func TestRdBits(t *testing.T) {
	// rd53: count of 5 inputs, 3 output bits. Input 0b11111 → count 5
	// = 101: s0=1, s1=0, s2=1.
	if !Rd(5, 0).F.Bit(0b11111) || Rd(5, 1).F.Bit(0b11111) || !Rd(5, 2).F.Bit(0b11111) {
		t.Fatal("rd53 bits wrong at all-ones")
	}
	if Rd(5, 0).F.Bit(0) {
		t.Fatal("rd53 s0 at zero")
	}
}

func TestNineSym(t *testing.T) {
	s := NineSym()
	if !s.F.Bit(0b000000111) || s.F.Bit(0b000000011) || s.F.Bit(0b111111110) {
		t.Fatal("9sym membership wrong")
	}
	// Symmetric: any permutation of inputs preserves the value; spot
	// check via popcount equivalence classes.
	if s.F.Bit(0b000001111) != s.F.Bit(0b111100000) {
		t.Fatal("9sym not symmetric")
	}
}

func TestAdderBitAndComparator(t *testing.T) {
	// add2: 1+1 = 10 → s0=0, s1=1, carry(s2)=0.
	x := uint64(0b0101) // a=1, b=1
	if AdderBit(2, 0).F.Bit(x) || !AdderBit(2, 1).F.Bit(x) || AdderBit(2, 2).F.Bit(x) {
		t.Fatal("add2 of 1+1 wrong")
	}
	// cmp2: a=3,b=1 → greater.
	y := uint64(0b0111)
	if !ComparatorGT(2).F.Bit(y) {
		t.Fatal("cmp2 wrong")
	}
	if ComparatorGT(2).F.Bit(0b1101) { // a=1, b=3
		t.Fatal("cmp2 reversed")
	}
}

func TestRandomReproducible(t *testing.T) {
	a := RandomDensity(6, 0.4, 42)
	b := RandomDensity(6, 0.4, 42)
	if !a.F.Equal(b.F) {
		t.Fatal("seeded generator not reproducible")
	}
	c := RandomDensity(6, 0.4, 43)
	if a.F.Equal(c.F) {
		t.Fatal("different seeds should differ")
	}
}

func TestPaperExampleAndFig4(t *testing.T) {
	pe := PaperExample()
	if pe.F.CountOnes() != 2 {
		t.Fatal("xnor2 on-set")
	}
	f4 := Fig4()
	if f4.N() != 6 {
		t.Fatal("fig4 vars")
	}
	if !f4.F.Bit(0b000111) || !f4.F.Bit(0b111000) {
		t.Fatal("fig4 straight-column products missing")
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("9sym"); !ok {
		t.Fatal("9sym missing")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Fatal("phantom benchmark")
	}
}

func TestDReducibleSpecIsReducible(t *testing.T) {
	s := DReducible(7, 2, 9)
	// All on-set points must satisfy two independent parity checks →
	// the on-set spans at most 2^(7-2) points.
	if s.F.CountOnes() > 32 {
		t.Fatalf("dred7 on-set %d too large", s.F.CountOnes())
	}
	if s.F.IsZero() {
		t.Fatal("dred empty")
	}
	_ = truthtab.TT{}
}
