// Package xrand holds the per-die random sources shared by the serving
// and yield paths. The engine and the lane yield runner reseed a source
// for every die so results are independent of worker scheduling, but
// math/rand's default lagged-Fibonacci source pays a ~600-step table
// initialization per Seed — more expensive than generating the whole
// defect map it feeds. SplitMix is a rand.Source64 with O(1) seeding
// (splitmix64, the standard seeder for xoshiro-family generators).
package xrand

import "math/rand"

// SplitMix implements rand.Source64 over splitmix64.
type SplitMix struct {
	s uint64
}

// New returns a reseedable per-die RNG over a SplitMix source.
// (*rand.Rand).Seed is not used; reseed through the returned source.
func New() (*SplitMix, *rand.Rand) {
	src := &SplitMix{}
	return src, rand.New(src)
}

// mix64 is the splitmix64 output finalizer: a bijective avalanche over
// the full 64-bit state.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// SubSeed derives the deterministic per-die seed of die i from a sweep
// seed (splitmix64 increment keeps neighboring dies decorrelated). The
// lane and scalar yield runners, and the engine's per-die fan-out, all
// derive die seeds through this one function — that is what makes a
// die's defect map and repair stream identical no matter which path
// maps it.
func SubSeed(seed int64, i int) int64 {
	return seed + int64(i)*-0x61c8864680b583eb
}

// Seed implements rand.Source. The raw seed is passed through the
// finalizer before becoming the counter state: SubSeed strides dies by
// a multiple of splitmix64's own golden-ratio increment, so seeding
// with the raw value would make adjacent dies' streams one-draw-shifted
// copies of each other (die i+1's k-th draw = die i's (k−1)-th).
// Mixing first lands each die at an unrelated point of the state
// space, keeping the streams decorrelated.
func (s *SplitMix) Seed(seed int64) { s.s = mix64(uint64(seed)) }

// Uint64 implements rand.Source64.
func (s *SplitMix) Uint64() uint64 {
	s.s += 0x9e3779b97f4a7c15
	return mix64(s.s)
}

// Int63 implements rand.Source.
func (s *SplitMix) Int63() int64 { return int64(s.Uint64() >> 1) }
