package xrand

import "testing"

func TestSplitMixDeterministicAndReseedable(t *testing.T) {
	srcA, rngA := New()
	srcB, rngB := New()
	srcA.Seed(42)
	srcB.Seed(42)
	for i := 0; i < 100; i++ {
		if rngA.Uint64() != rngB.Uint64() {
			t.Fatal("equal seeds must give equal streams")
		}
	}
	// Reseeding restarts the stream exactly.
	srcA.Seed(7)
	first := rngA.Uint64()
	srcA.Seed(7)
	if rngA.Uint64() != first {
		t.Fatal("reseed must restart the stream")
	}
}

func TestSplitMixRoughlyUniform(t *testing.T) {
	src, rng := New()
	src.Seed(1)
	const n = 200_000
	sum, ones := 0.0, 0
	for i := 0; i < n; i++ {
		f := rng.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
		if rng.Intn(2) == 1 {
			ones++
		}
	}
	if mean := sum / n; mean < 0.49 || mean > 0.51 {
		t.Fatalf("Float64 mean %.4f far from 0.5", mean)
	}
	if frac := float64(ones) / n; frac < 0.49 || frac > 0.51 {
		t.Fatalf("Intn(2) ones fraction %.4f far from 0.5", frac)
	}
}

// TestSplitMixAdjacentSeedsDecorrelated guards the SubSeed interaction:
// SubSeed strides by a multiple of splitmix64's internal increment, so
// without the seed finalizer adjacent dies' streams would be one-draw-
// shifted copies of each other. Check both first-draw balance and that
// neighboring streams share no window at small shifts.
func TestSplitMixAdjacentSeedsDecorrelated(t *testing.T) {
	src, rng := New()
	low := 0
	const dies = 10_000
	for i := 0; i < dies; i++ {
		src.Seed(SubSeed(99, i))
		if rng.Float64() < 0.5 {
			low++
		}
	}
	if frac := float64(low) / dies; frac < 0.47 || frac > 0.53 {
		t.Fatalf("first-draw low fraction %.4f across adjacent die seeds", frac)
	}
	const draws = 32
	streams := make([][draws]uint64, 4)
	for i := range streams {
		src.Seed(SubSeed(99, i))
		for k := 0; k < draws; k++ {
			streams[i][k] = rng.Uint64()
		}
	}
	for i := 0; i+1 < len(streams); i++ {
		for shift := -2; shift <= 2; shift++ {
			matches := 0
			for k := 0; k < draws; k++ {
				if j := k + shift; j >= 0 && j < draws && streams[i][k] == streams[i+1][j] {
					matches++
				}
			}
			if matches > 1 {
				t.Fatalf("dies %d and %d share %d draws at shift %d: streams correlated", i, i+1, matches, shift)
			}
		}
	}
}
