// Package pcircuit implements the P-circuit decomposition used as a
// lattice-synthesis preprocessing step in Section III-B-1 of the DATE'17
// paper (after Bernasconi, Ciriani, Frontini, Liberali, Trucco, Villa).
//
// For a splitting variable x and the projections c0 = f|x=0 and
// c1 = f|x=1 with intersection I = c0·c1, the P-circuit form is
//
//	P(f) = x'·f= + x·f≠ + fI
//
// with the freedom (the paper's conditions 1–3):
//
//	(c0 \ I) ⊆ f= ⊆ c0,   (c1 \ I) ⊆ f≠ ⊆ c1,   ∅ ⊆ fI ⊆ I.
//
// Any choice inside those intervals reproduces f exactly. The
// sub-functions depend on n−1 variables and have smaller on-sets, so
// their lattices are often smaller; the blocks are recombined with the
// lattice OR/AND composition rules. This package synthesizes the blocks
// with both the exact and the flexibility-exploiting cover choices and
// searches all splitting variables for the best area.
package pcircuit

import (
	"fmt"

	"nanoxbar/internal/cube"
	"nanoxbar/internal/isop"
	"nanoxbar/internal/latsynth"
	"nanoxbar/internal/lattice"
	"nanoxbar/internal/qm"
	"nanoxbar/internal/truthtab"
)

// Mode selects how the decomposition blocks are chosen.
type Mode int

// Decomposition modes.
const (
	// Shannon uses f= = c0, f≠ = c1 and omits the fI block: the plain
	// Shannon expansion (the fI interval chooses ∅).
	Shannon Mode = iota
	// WithIntersection uses fI = I and exploits the don't-care
	// intervals [cP \ I, cP] when covering the literal blocks.
	WithIntersection
)

func (m Mode) String() string {
	if m == Shannon {
		return "shannon"
	}
	return "intersection"
}

// Options configure the decomposition.
type Options struct {
	Synth latsynth.Options // used for the block lattices
	Mode  Mode
}

// DefaultOptions use exact covers and the intersection mode.
func DefaultOptions() Options {
	return Options{Synth: latsynth.DefaultOptions(), Mode: WithIntersection}
}

// Result is a synthesized P-circuit lattice.
type Result struct {
	Lattice *lattice.Lattice
	Var     int  // splitting variable
	Mode    Mode // block selection mode
	// Block functions actually chosen (over n vars, independent of Var).
	FEq, FNeq, FInt truthtab.TT
}

// Area returns the lattice area.
func (r *Result) Area() int { return r.Lattice.Area() }

// blockCover selects a function g in the interval [on, on ∨ dc]
// minimizing its cover, honouring the Synth options (exact via QM with
// don't-cares where affordable, ISOP otherwise), and returns g.
func blockCover(on, dc truthtab.TT, opts latsynth.Options) truthtab.TT {
	if opts.Exact {
		if cov, err := qm.Minimize(on, dc, opts.QM); err == nil {
			return cov.ToTT(on.NumVars())
		}
	}
	return isop.Cover(on, on.Or(dc)).ToTT(on.NumVars())
}

// Decompose synthesizes the P-circuit lattice of f for splitting
// variable v.
func Decompose(f truthtab.TT, v int, opts Options) (*Result, error) {
	n := f.NumVars()
	if v < 0 || v >= n {
		return nil, fmt.Errorf("pcircuit: variable %d out of range", v)
	}
	if f.IsZero() || f.IsOne() {
		return &Result{Lattice: lattice.Constant(f.IsOne()), Var: v, Mode: opts.Mode,
			FEq: truthtab.Zero(n), FNeq: truthtab.Zero(n), FInt: truthtab.Zero(n)}, nil
	}
	c0 := f.Cofactor(v, false)
	c1 := f.Cofactor(v, true)
	inter := c0.And(c1)

	var fEq, fNeq, fInt truthtab.TT
	switch opts.Mode {
	case Shannon:
		fEq, fNeq, fInt = c0, c1, truthtab.Zero(n)
	case WithIntersection:
		fEq = blockCover(c0.AndNot(inter), inter, opts.Synth)
		fNeq = blockCover(c1.AndNot(inter), inter, opts.Synth)
		fInt = inter
	default:
		return nil, fmt.Errorf("pcircuit: unknown mode %d", opts.Mode)
	}

	var terms []*lattice.Lattice
	addTerm := func(lit *lattice.Lattice, g truthtab.TT) error {
		if g.IsZero() {
			return nil
		}
		if g.IsOne() {
			terms = append(terms, lit)
			return nil
		}
		sub, err := latsynth.DualMethod(g, opts.Synth)
		if err != nil {
			return err
		}
		terms = append(terms, lattice.And(lit, sub.Lattice))
		return nil
	}
	litNeg := lattice.FromCube(cube.FromLiteral(v, true))
	litPos := lattice.FromCube(cube.FromLiteral(v, false))
	if err := addTerm(litNeg, fEq); err != nil {
		return nil, err
	}
	if err := addTerm(litPos, fNeq); err != nil {
		return nil, err
	}
	if !fInt.IsZero() {
		if fInt.IsOne() {
			terms = append(terms, lattice.Constant(true))
		} else {
			sub, err := latsynth.DualMethod(fInt, opts.Synth)
			if err != nil {
				return nil, err
			}
			terms = append(terms, sub.Lattice)
		}
	}
	var l *lattice.Lattice
	if len(terms) == 0 {
		l = lattice.Constant(false)
	} else {
		l = lattice.OrAll(terms...)
	}
	if opts.Synth.PostReduce && l.Area() <= 1200 {
		l = latsynth.PostReduce(l, f)
	}
	if !l.ImplementsFast(f) {
		return nil, fmt.Errorf("pcircuit: composed lattice does not implement f (v=%d mode=%v)", v, opts.Mode)
	}
	return &Result{Lattice: l, Var: v, Mode: opts.Mode, FEq: fEq, FNeq: fNeq, FInt: fInt}, nil
}

// Best searches all splitting variables in f's support (and both modes
// when opts.Mode is WithIntersection, since Shannon occasionally wins)
// and returns the smallest-area decomposition.
func Best(f truthtab.TT, opts Options) (*Result, error) {
	sup := f.Support()
	if len(sup) == 0 {
		return Decompose(f, 0, opts)
	}
	modes := []Mode{opts.Mode}
	if opts.Mode == WithIntersection {
		modes = []Mode{WithIntersection, Shannon}
	}
	var best *Result
	for _, v := range sup {
		for _, m := range modes {
			o := opts
			o.Mode = m
			res, err := Decompose(f, v, o)
			if err != nil {
				return nil, err
			}
			if best == nil || res.Area() < best.Area() {
				best = res
			}
		}
	}
	return best, nil
}
