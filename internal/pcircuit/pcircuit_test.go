package pcircuit

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nanoxbar/internal/bexpr"
	"nanoxbar/internal/latsynth"
	"nanoxbar/internal/truthtab"
)

func tt(t *testing.T, s string) truthtab.TT {
	t.Helper()
	f, _, err := bexpr.ParseTT(s)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func randTT(n int, rng *rand.Rand) truthtab.TT {
	f := truthtab.New(n)
	for a := uint64(0); a < f.Size(); a++ {
		if rng.Intn(2) == 1 {
			f.SetBit(a, true)
		}
	}
	return f
}

func TestDecomposeCorrectAllVarsAllModes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 40; i++ {
		n := 2 + rng.Intn(3)
		f := randTT(n, rng)
		for v := 0; v < n; v++ {
			for _, m := range []Mode{Shannon, WithIntersection} {
				opts := DefaultOptions()
				opts.Mode = m
				res, err := Decompose(f, v, opts)
				if err != nil {
					t.Fatalf("n=%d v=%d mode=%v: %v", n, v, m, err)
				}
				if !res.Lattice.Implements(f) {
					t.Fatalf("decomposition wrong: n=%d v=%d mode=%v f=%v", n, v, m, f)
				}
			}
		}
	}
}

func TestBlockIntervals(t *testing.T) {
	// The chosen blocks must satisfy the paper's interval conditions.
	rng := rand.New(rand.NewSource(2))
	opts := DefaultOptions()
	for i := 0; i < 60; i++ {
		n := 2 + rng.Intn(3)
		f := randTT(n, rng)
		if f.IsZero() || f.IsOne() {
			continue
		}
		v := rng.Intn(n)
		res, err := Decompose(f, v, opts)
		if err != nil {
			t.Fatal(err)
		}
		c0 := f.Cofactor(v, false)
		c1 := f.Cofactor(v, true)
		inter := c0.And(c1)
		if !c0.AndNot(inter).Implies(res.FEq) || !res.FEq.Implies(c0) {
			t.Fatalf("f= interval violated (v=%d, f=%v)", v, f)
		}
		if !c1.AndNot(inter).Implies(res.FNeq) || !res.FNeq.Implies(c1) {
			t.Fatalf("f≠ interval violated (v=%d, f=%v)", v, f)
		}
		if !res.FInt.Implies(inter) {
			t.Fatalf("fI exceeds I (v=%d, f=%v)", v, f)
		}
	}
}

func TestPCircuitIdentity(t *testing.T) {
	// x'·f= + x·f≠ + fI must reconstruct f for the chosen blocks.
	rng := rand.New(rand.NewSource(3))
	opts := DefaultOptions()
	for i := 0; i < 60; i++ {
		n := 2 + rng.Intn(3)
		f := randTT(n, rng)
		if f.IsZero() || f.IsOne() {
			continue
		}
		v := rng.Intn(n)
		res, err := Decompose(f, v, opts)
		if err != nil {
			t.Fatal(err)
		}
		x := truthtab.Var(n, v)
		recon := x.Not().And(res.FEq).Or(x.And(res.FNeq)).Or(res.FInt)
		if !recon.Equal(f) {
			t.Fatalf("P-circuit identity broken (v=%d, f=%v)", v, f)
		}
	}
}

func TestBestPicksMinimum(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	opts := DefaultOptions()
	for i := 0; i < 20; i++ {
		n := 2 + rng.Intn(3)
		f := randTT(n, rng)
		best, err := Best(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !best.Lattice.Implements(f) {
			t.Fatal("best lattice wrong")
		}
		// No individual split may beat it.
		for _, v := range f.Support() {
			for _, m := range []Mode{Shannon, WithIntersection} {
				o := opts
				o.Mode = m
				res, err := Decompose(f, v, o)
				if err != nil {
					t.Fatal(err)
				}
				if res.Area() < best.Area() {
					t.Fatalf("Best missed split v=%d mode=%v (%d < %d)", v, m, res.Area(), best.Area())
				}
			}
		}
	}
}

func TestConstantsAndLiterals(t *testing.T) {
	opts := DefaultOptions()
	for _, f := range []truthtab.TT{truthtab.Zero(2), truthtab.One(2), truthtab.Var(2, 0)} {
		res, err := Best(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Lattice.Implements(f) {
			t.Fatalf("trivial function wrong: %v", f)
		}
	}
}

func TestMuxBenefitsFromDecomposition(t *testing.T) {
	// A 2:1 mux f = s'a + sb decomposes perfectly on s: blocks become
	// single literals. The composed lattice must be correct and small.
	f := tt(t, "x1'x2 + x1x3")
	res, err := Decompose(f, 0, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Lattice.Implements(f) {
		t.Fatal("mux decomposition wrong")
	}
	if res.FEq.Support() != nil && len(res.FEq.Support()) > 1 {
		t.Fatalf("f= should be a single literal, support %v", res.FEq.Support())
	}
}

func TestQuickDecompose(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(5))}
	opts := DefaultOptions()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		f := randTT(n, rng)
		v := rng.Intn(n)
		res, err := Decompose(f, v, opts)
		if err != nil {
			return false
		}
		return res.Lattice.Implements(f)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBadVariable(t *testing.T) {
	if _, err := Decompose(truthtab.Var(2, 0), 5, DefaultOptions()); err == nil {
		t.Fatal("expected range error")
	}
}

func TestHeuristicSynthInBlocks(t *testing.T) {
	// Blocks must stay correct with ISOP covers (Exact=false).
	rng := rand.New(rand.NewSource(6))
	opts := DefaultOptions()
	opts.Synth = latsynth.Options{Exact: false, Cells: latsynth.FirstCommon, PostReduce: true}
	for i := 0; i < 30; i++ {
		n := 2 + rng.Intn(3)
		f := randTT(n, rng)
		res, err := Best(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Lattice.Implements(f) {
			t.Fatal("heuristic block synthesis wrong")
		}
	}
}
