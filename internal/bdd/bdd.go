// Package bdd implements reduced ordered binary decision diagrams
// (ROBDDs) with a hash-consed unique table and a memoized if-then-else
// operator.
//
// In this library BDDs serve as the scalable cross-check substrate: every
// truth-table algorithm (package truthtab) is validated against the same
// computation on BDDs, and function manipulation beyond exhaustive
// truth-table range can run here. The variable order is fixed to the
// natural order x0 < x1 < … (sufficient for the paper's function sizes).
package bdd

import (
	"fmt"
	"math/bits"

	"nanoxbar/internal/truthtab"
)

// Ref is a node reference. The terminals are False = 0 and True = 1.
type Ref int32

// Terminal references.
const (
	False Ref = 0
	True  Ref = 1
)

type node struct {
	v      int32 // variable index; terminals use a sentinel above all vars
	lo, hi Ref
}

type iteKey struct{ f, g, h Ref }

// Manager owns the node store of one BDD universe.
type Manager struct {
	n      int
	nodes  []node
	unique map[node]Ref
	ite    map[iteKey]Ref
}

const termVar = int32(1 << 30)

// New creates a manager for functions over n variables.
func New(n int) *Manager {
	if n < 0 || n > 1<<20 {
		panic(fmt.Sprintf("bdd: bad variable count %d", n))
	}
	m := &Manager{
		n:      n,
		nodes:  []node{{v: termVar}, {v: termVar}},
		unique: make(map[node]Ref),
		ite:    make(map[iteKey]Ref),
	}
	return m
}

// NumVars returns the variable count.
func (m *Manager) NumVars() int { return m.n }

// Size returns the number of live nodes including terminals.
func (m *Manager) Size() int { return len(m.nodes) }

// Const returns a terminal.
func (m *Manager) Const(b bool) Ref {
	if b {
		return True
	}
	return False
}

func (m *Manager) mk(v int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	k := node{v: v, lo: lo, hi: hi}
	if r, ok := m.unique[k]; ok {
		return r
	}
	m.nodes = append(m.nodes, k)
	r := Ref(len(m.nodes) - 1)
	m.unique[k] = r
	return r
}

// Var returns the function x_v.
func (m *Manager) Var(v int) Ref {
	if v < 0 || v >= m.n {
		panic(fmt.Sprintf("bdd: variable %d out of range", v))
	}
	return m.mk(int32(v), False, True)
}

// Literal returns x_v or its complement.
func (m *Manager) Literal(v int, neg bool) Ref {
	if neg {
		return m.Not(m.Var(v))
	}
	return m.Var(v)
}

func (m *Manager) topVar(f Ref) int32 { return m.nodes[f].v }

func (m *Manager) cofactors(f Ref, v int32) (lo, hi Ref) {
	nd := m.nodes[f]
	if nd.v != v {
		return f, f
	}
	return nd.lo, nd.hi
}

// ITE computes if-then-else(f, g, h) = f·g + f'·h.
func (m *Manager) ITE(f, g, h Ref) Ref {
	// Terminal shortcuts.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	k := iteKey{f, g, h}
	if r, ok := m.ite[k]; ok {
		return r
	}
	v := m.topVar(f)
	if gv := m.topVar(g); gv < v {
		v = gv
	}
	if hv := m.topVar(h); hv < v {
		v = hv
	}
	f0, f1 := m.cofactors(f, v)
	g0, g1 := m.cofactors(g, v)
	h0, h1 := m.cofactors(h, v)
	r := m.mk(v, m.ITE(f0, g0, h0), m.ITE(f1, g1, h1))
	m.ite[k] = r
	return r
}

// Not returns ¬f.
func (m *Manager) Not(f Ref) Ref { return m.ITE(f, False, True) }

// And returns f ∧ g.
func (m *Manager) And(f, g Ref) Ref { return m.ITE(f, g, False) }

// Or returns f ∨ g.
func (m *Manager) Or(f, g Ref) Ref { return m.ITE(f, True, g) }

// Xor returns f ⊕ g.
func (m *Manager) Xor(f, g Ref) Ref { return m.ITE(f, m.Not(g), g) }

// Implies reports whether f ⇒ g.
func (m *Manager) Implies(f, g Ref) bool { return m.ITE(f, g, True) == True }

// Restrict returns f with variable v fixed to val.
func (m *Manager) Restrict(f Ref, v int, val bool) Ref {
	if m.topVar(f) > int32(v) {
		return f // f does not depend on v (ordering)
	}
	nd := m.nodes[f]
	if nd.v == int32(v) {
		if val {
			return nd.hi
		}
		return nd.lo
	}
	return m.mk(nd.v, m.Restrict(nd.lo, v, val), m.Restrict(nd.hi, v, val))
}

// Exists returns ∃x_v . f.
func (m *Manager) Exists(f Ref, v int) Ref {
	return m.Or(m.Restrict(f, v, false), m.Restrict(f, v, true))
}

// Eval evaluates f at an assignment (bit v = value of variable v).
func (m *Manager) Eval(f Ref, a uint64) bool {
	for f != True && f != False {
		nd := m.nodes[f]
		if a>>uint(nd.v)&1 == 1 {
			f = nd.hi
		} else {
			f = nd.lo
		}
	}
	return f == True
}

// FromTT builds the BDD of a truth table (must match the manager width).
func (m *Manager) FromTT(t truthtab.TT) Ref {
	if t.NumVars() != m.n {
		panic("bdd: truth table width mismatch")
	}
	memo := make(map[string]Ref)
	var build func(t truthtab.TT, v int) Ref
	build = func(t truthtab.TT, v int) Ref {
		if t.IsZero() {
			return False
		}
		if t.IsOne() {
			return True
		}
		key := t.String()
		if r, ok := memo[key]; ok {
			return r
		}
		for v < m.n && !t.DependsOn(v) {
			v++
		}
		r := m.mk(int32(v), build(t.Cofactor(v, false), v+1), build(t.Cofactor(v, true), v+1))
		memo[key] = r
		return r
	}
	return build(t, 0)
}

// ToTT expands f to a truth table (manager width must be ≤ truthtab.MaxVars).
func (m *Manager) ToTT(f Ref) truthtab.TT {
	t := truthtab.New(m.n)
	for a := uint64(0); a < t.Size(); a++ {
		if m.Eval(f, a) {
			t.SetBit(a, true)
		}
	}
	return t
}

// SatCount returns the number of satisfying assignments over all n
// variables.
func (m *Manager) SatCount(f Ref) uint64 {
	memo := make(map[Ref]uint64)
	var count func(f Ref) uint64 // assignments over vars >= topVar(f)
	count = func(f Ref) uint64 {
		if f == False {
			return 0
		}
		if f == True {
			return 1
		}
		if c, ok := memo[f]; ok {
			return c
		}
		nd := m.nodes[f]
		c := count(nd.lo)<<gap(m, f, nd.lo) + count(nd.hi)<<gap(m, f, nd.hi)
		memo[f] = c
		return c
	}
	top := m.topVar(f)
	if top > int32(m.n) {
		top = int32(m.n)
	}
	return count(f) << uint(top)
}

// gap returns the number of skipped variable levels between parent and
// child (each skipped level doubles the count).
func gap(m *Manager, parent, child Ref) uint {
	pv := m.topVar(parent)
	cv := m.topVar(child)
	if cv > int32(m.n) {
		cv = int32(m.n)
	}
	return uint(cv - pv - 1)
}

// Support returns the variables f depends on, ascending.
func (m *Manager) Support(f Ref) []int {
	seen := make(map[Ref]bool)
	varSet := uint64(0)
	var walk func(f Ref)
	walk = func(f Ref) {
		if f == True || f == False || seen[f] {
			return
		}
		seen[f] = true
		nd := m.nodes[f]
		varSet |= 1 << uint(nd.v)
		walk(nd.lo)
		walk(nd.hi)
	}
	walk(f)
	out := make([]int, 0, bits.OnesCount64(varSet))
	for v := 0; v < m.n && v < 64; v++ {
		if varSet>>uint(v)&1 == 1 {
			out = append(out, v)
		}
	}
	return out
}

// NodeCount returns the number of internal nodes reachable from f.
func (m *Manager) NodeCount(f Ref) int {
	seen := make(map[Ref]bool)
	var walk func(f Ref)
	walk = func(f Ref) {
		if f == True || f == False || seen[f] {
			return
		}
		seen[f] = true
		walk(m.nodes[f].lo)
		walk(m.nodes[f].hi)
	}
	walk(f)
	return len(seen)
}

// Dual returns the dual function f^D(x) = ¬f(¬x), computed by structural
// substitution (swap lo/hi children, then negate).
func (m *Manager) Dual(f Ref) Ref {
	memo := make(map[Ref]Ref)
	var flip func(f Ref) Ref // f with all variables complemented
	flip = func(f Ref) Ref {
		if f == True || f == False {
			return f
		}
		if r, ok := memo[f]; ok {
			return r
		}
		nd := m.nodes[f]
		r := m.mk(nd.v, flip(nd.hi), flip(nd.lo))
		memo[f] = r
		return r
	}
	return m.Not(flip(f))
}
