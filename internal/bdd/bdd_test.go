package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nanoxbar/internal/truthtab"
)

func randTT(n int, rng *rand.Rand) truthtab.TT {
	t := truthtab.New(n)
	for a := uint64(0); a < t.Size(); a++ {
		if rng.Intn(2) == 1 {
			t.SetBit(a, true)
		}
	}
	return t
}

func TestTerminals(t *testing.T) {
	m := New(3)
	if m.Const(true) != True || m.Const(false) != False {
		t.Fatal("terminals")
	}
	if m.Eval(True, 5) != true || m.Eval(False, 5) != false {
		t.Fatal("terminal eval")
	}
}

func TestVarAndLiteral(t *testing.T) {
	m := New(4)
	x2 := m.Var(2)
	for a := uint64(0); a < 16; a++ {
		if m.Eval(x2, a) != (a>>2&1 == 1) {
			t.Fatal("Var eval")
		}
	}
	nx2 := m.Literal(2, true)
	if m.And(x2, nx2) != False || m.Or(x2, nx2) != True {
		t.Fatal("literal complement laws")
	}
}

func TestCanonicity(t *testing.T) {
	// Equivalent expressions must share the same Ref.
	m := New(3)
	a := m.Or(m.Var(0), m.Var(1))
	b := m.Not(m.And(m.Not(m.Var(0)), m.Not(m.Var(1))))
	if a != b {
		t.Fatal("De Morgan forms not canonical")
	}
}

func TestRoundTripTT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		n := 1 + rng.Intn(8)
		m := New(n)
		f := randTT(n, rng)
		r := m.FromTT(f)
		if !m.ToTT(r).Equal(f) {
			t.Fatalf("round trip failed for %v", f)
		}
	}
}

func TestOpsAgreeWithTruthTables(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 60; i++ {
		n := 1 + rng.Intn(7)
		m := New(n)
		f, g := randTT(n, rng), randTT(n, rng)
		rf, rg := m.FromTT(f), m.FromTT(g)
		if !m.ToTT(m.And(rf, rg)).Equal(f.And(g)) {
			t.Fatal("And mismatch")
		}
		if !m.ToTT(m.Or(rf, rg)).Equal(f.Or(g)) {
			t.Fatal("Or mismatch")
		}
		if !m.ToTT(m.Xor(rf, rg)).Equal(f.Xor(g)) {
			t.Fatal("Xor mismatch")
		}
		if !m.ToTT(m.Not(rf)).Equal(f.Not()) {
			t.Fatal("Not mismatch")
		}
		if m.Implies(rf, rg) != f.Implies(g) {
			t.Fatal("Implies mismatch")
		}
	}
}

func TestRestrictAndExists(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 60; i++ {
		n := 2 + rng.Intn(6)
		m := New(n)
		f := randTT(n, rng)
		rf := m.FromTT(f)
		v := rng.Intn(n)
		if !m.ToTT(m.Restrict(rf, v, true)).Equal(f.Cofactor(v, true)) {
			t.Fatal("Restrict(1) mismatch")
		}
		if !m.ToTT(m.Restrict(rf, v, false)).Equal(f.Cofactor(v, false)) {
			t.Fatal("Restrict(0) mismatch")
		}
		want := f.Cofactor(v, false).Or(f.Cofactor(v, true))
		if !m.ToTT(m.Exists(rf, v)).Equal(want) {
			t.Fatal("Exists mismatch")
		}
	}
}

func TestDualAgreesWithTruthTable(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 60; i++ {
		n := 1 + rng.Intn(7)
		m := New(n)
		f := randTT(n, rng)
		if !m.ToTT(m.Dual(m.FromTT(f))).Equal(f.Dual()) {
			t.Fatalf("Dual mismatch for %v", f)
		}
	}
}

func TestSatCount(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 60; i++ {
		n := 1 + rng.Intn(8)
		m := New(n)
		f := randTT(n, rng)
		if got := m.SatCount(m.FromTT(f)); got != f.CountOnes() {
			t.Fatalf("SatCount = %d want %d (f=%v)", got, f.CountOnes(), f)
		}
	}
	// Terminals.
	m := New(5)
	if m.SatCount(True) != 32 || m.SatCount(False) != 0 {
		t.Fatal("terminal sat counts")
	}
}

func TestSupport(t *testing.T) {
	m := New(5)
	f := m.And(m.Var(1), m.Or(m.Var(3), m.Literal(3, true))) // = x1
	s := m.Support(f)
	if len(s) != 1 || s[0] != 1 {
		t.Fatalf("support = %v", s)
	}
}

func TestNodeCountSharing(t *testing.T) {
	// x0⊕x1⊕x2 has the classic linear-size BDD: 2 internal nodes per
	// middle level plus the top: 1 + 2 + 2 = 5.
	m := New(3)
	f := m.Xor(m.Xor(m.Var(0), m.Var(1)), m.Var(2))
	if got := m.NodeCount(f); got != 5 {
		t.Fatalf("xor3 node count = %d", got)
	}
}

func TestQuickEquivalenceWithTT(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(6))}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		m := New(n)
		f, g := randTT(n, rng), randTT(n, rng)
		// (f ∧ g) ∨ (f ⊕ g) == f ∨ g
		lhs := m.Or(m.And(m.FromTT(f), m.FromTT(g)), m.Xor(m.FromTT(f), m.FromTT(g)))
		return m.ToTT(lhs).Equal(f.Or(g))
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLargerFunction(t *testing.T) {
	// 16-variable majority via BDD ops; spot check evaluation.
	n := 16
	m := New(n)
	// Build a population-count threshold incrementally as a sum of
	// variables using ITE-based adders would be heavy; instead check
	// conjunction/disjunction chains stay canonical and evaluable.
	conj, disj := True, False
	for v := 0; v < n; v++ {
		conj = m.And(conj, m.Var(v))
		disj = m.Or(disj, m.Var(v))
	}
	if m.SatCount(conj) != 1 {
		t.Fatal("AND chain satcount")
	}
	if m.SatCount(disj) != 1<<16-1 {
		t.Fatal("OR chain satcount")
	}
	if !m.Eval(conj, 0xffff) || m.Eval(conj, 0xfffe) {
		t.Fatal("AND chain eval")
	}
}

func TestPanics(t *testing.T) {
	m := New(2)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("var range", func() { m.Var(2) })
	mustPanic("tt width", func() { m.FromTT(truthtab.New(3)) })
}
