// Package nanoxbar reproduces "Computing with Nano-Crossbar Arrays:
// Logic Synthesis and Fault Tolerance" (Altun, Ciriani, Tahoori, DATE
// 2017): logic synthesis for diode-, FET- and four-terminal-switch
// nano-crossbar arrays with area optimization, and the paper's built-in
// test, diagnosis, self-mapping, and defect-unaware design flows.
//
// The public SDK lives in pkg/nanoxbar (context-aware typed client
// API, error taxonomy, and the re-exported library surface) with an
// HTTP twin in pkg/nanoxbar/client; the implementation lives under
// internal/ (see DESIGN.md for the module inventory and the
// pkg → engine → internal layering). cmd/ hosts the command-line tools
// and the serving daemon, examples/ the runnable walkthroughs (built
// on pkg/nanoxbar only), and bench_test.go in this directory
// regenerates every experiment of the paper's evaluation
// (EXPERIMENTS.md).
package nanoxbar
