// Package nanoxbar reproduces "Computing with Nano-Crossbar Arrays:
// Logic Synthesis and Fault Tolerance" (Altun, Ciriani, Tahoori, DATE
// 2017): logic synthesis for diode-, FET- and four-terminal-switch
// nano-crossbar arrays with area optimization, and the paper's built-in
// test, diagnosis, self-mapping, and defect-unaware design flows.
//
// The implementation lives under internal/ (see DESIGN.md for the
// module inventory); cmd/ hosts the command-line tools, examples/ the
// runnable walkthroughs, and bench_test.go in this directory regenerates
// every experiment of the paper's evaluation (EXPERIMENTS.md).
package nanoxbar
